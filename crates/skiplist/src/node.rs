//! Node layout and the read-only [`SkipList`] view.
//!
//! Every node is laid out inside an arena as:
//!
//! ```text
//! offset  field
//! 0       seq     u64
//! 8       klen    u32
//! 12      vlen    u32
//! 16      height  u16
//! 18      kind    u8
//! 19..24  padding
//! 24      tower   height × u64 link words (pool-global offsets, atomics)
//! 24+8h   key bytes, then value bytes (8-aligned total)
//! ```
//!
//! Link words hold **pool-global offsets** — the reproduction's equivalent
//! of absolute pointers at a fixed DAX mapping — so zero-copy compaction
//! can link nodes of different arenas into one list. Offset `0` is NIL.
//!
//! Payload bytes (`seq..key/value`) are written before a node is published
//! and never mutated afterwards; link words are accessed only through
//! atomics (release on publish, acquire on traversal).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use miodb_common::types::mv_cmp;
use miodb_common::{OpKind, SequenceNumber};
use miodb_pmem::PmemPool;

/// Maximum tower height. Head nodes always have this height.
pub const MAX_HEIGHT: usize = 16;

/// Byte offset of the tower within a node.
pub const TOWER_OFFSET: u64 = 24;

/// Size of the fixed node header (before the tower).
pub const HEADER_BYTES: u64 = TOWER_OFFSET;

/// Modeled bytes touched when a traversal inspects one node (header plus a
/// cache line of key bytes).
pub(crate) const VISIT_BYTES: usize = 32;

/// Total size in bytes of a node with the given dimensions, 8-aligned.
pub fn node_size(height: usize, klen: usize, vlen: usize) -> u64 {
    let raw = HEADER_BYTES + 8 * height as u64 + klen as u64 + vlen as u64;
    (raw + 7) & !7
}

/// Raw field readers. `off` must point at a node previously written in
/// `pool` (and published, for concurrent use).
pub(crate) mod raw {
    use super::*;

    #[inline]
    pub fn seq(pool: &PmemPool, off: u64) -> SequenceNumber {
        pool.read_u64(off)
    }

    #[inline]
    pub fn klen(pool: &PmemPool, off: u64) -> usize {
        (pool.read_u64(off + 8) & 0xFFFF_FFFF) as usize
    }

    #[inline]
    pub fn vlen(pool: &PmemPool, off: u64) -> usize {
        (pool.read_u64(off + 8) >> 32) as usize
    }

    #[inline]
    pub fn height(pool: &PmemPool, off: u64) -> usize {
        (pool.read_u64(off + 16) & 0xFFFF) as usize
    }

    #[inline]
    pub fn kind(pool: &PmemPool, off: u64) -> OpKind {
        let b = (pool.read_u64(off + 16) >> 16) as u8;
        OpKind::from_u8(b).unwrap_or(OpKind::Put)
    }

    /// Borrows the key bytes of the node.
    ///
    /// SAFETY-internal: key bytes are immutable after publication.
    #[inline]
    pub fn key(pool: &PmemPool, off: u64) -> &[u8] {
        let h = height(pool, off) as u64;
        let k = klen(pool, off);
        // SAFETY: written before publication, never mutated (crate invariant).
        unsafe { pool.slice(off + HEADER_BYTES + 8 * h, k) }
    }

    /// Borrows the value bytes of the node.
    #[inline]
    pub fn value(pool: &PmemPool, off: u64) -> &[u8] {
        let h = height(pool, off) as u64;
        let k = klen(pool, off) as u64;
        let v = vlen(pool, off);
        // SAFETY: as for `key`.
        unsafe { pool.slice(off + HEADER_BYTES + 8 * h + k, v) }
    }

    /// Offset of the link word for `level`.
    #[inline]
    pub fn tower_slot(off: u64, level: usize) -> u64 {
        off + TOWER_OFFSET + 8 * level as u64
    }

    /// Acquire-loads the successor at `level`.
    #[inline]
    pub fn next(pool: &PmemPool, off: u64, level: usize) -> u64 {
        pool.atomic_u64(tower_slot(off, level))
            .load(Ordering::Acquire)
    }

    /// Release-stores the successor at `level`, charging one modeled
    /// 8-byte device write (the paper's "atomic pointer update").
    #[inline]
    pub fn set_next(pool: &PmemPool, off: u64, level: usize, target: u64) {
        pool.atomic_u64(tower_slot(off, level))
            .store(target, Ordering::Release);
        pool.charge_write(8);
    }

    /// Compare-and-swaps the successor at `level` from `current` to
    /// `target`. Success publishes `target` with release ordering (all
    /// prior stores to the new node become visible to acquire traversals)
    /// and charges one modeled 8-byte device write; failure charges
    /// nothing and the caller must re-locate its predecessors.
    #[inline]
    pub fn cas_next(pool: &PmemPool, off: u64, level: usize, current: u64, target: u64) -> bool {
        let ok = pool
            .atomic_u64(tower_slot(off, level))
            .compare_exchange(current, target, Ordering::Release, Ordering::Relaxed)
            .is_ok();
        if ok {
            pool.charge_write(8);
        }
        ok
    }

    /// Writes the full node header (seq, lens, height, kind) without
    /// touching the tower.
    pub fn write_header(
        pool: &PmemPool,
        off: u64,
        seq: SequenceNumber,
        klen: usize,
        vlen: usize,
        height: usize,
        kind: OpKind,
    ) {
        pool.write_u64(off, seq);
        pool.write_u64(off + 8, (klen as u64) | ((vlen as u64) << 32));
        pool.write_u64(off + 16, (height as u64) | ((kind as u64) << 16));
    }

    /// Charges the modeled cost of inspecting one node during traversal.
    #[inline]
    pub fn charge_visit(pool: &PmemPool) {
        pool.charge_read(VISIT_BYTES);
    }
}

/// Finds, for every level, the last node strictly before the multi-version
/// position `(key, seq)` in the list rooted at `head`; returns
/// `preds[0].next[0]` (the first node `>= (key, seq)`, or 0).
///
/// This is the shared descent used by lookups, inserts, zero-copy merges
/// and the data repository. Each inspected node is charged as one modeled
/// device read.
pub(crate) fn find_preds(
    pool: &PmemPool,
    head: u64,
    key: &[u8],
    seq: SequenceNumber,
    preds: &mut [u64; MAX_HEIGHT],
) -> u64 {
    let mut x = head;
    // A node peeked once is CPU-cache resident afterwards; count the
    // modeled NVM read only on first inspection (exact dedup — descents
    // touch a few dozen nodes, so a linear scan is cheap), and charge the
    // whole descent in one batched call (same modeled latency per visit,
    // one spin).
    let mut seen: smallset::SmallSet = smallset::SmallSet::new();
    for level in (0..MAX_HEIGHT).rev() {
        loop {
            let nxt = raw::next(pool, x, level);
            if nxt == 0 {
                break;
            }
            seen.insert(nxt);
            let nk = raw::key(pool, nxt);
            let ns = raw::seq(pool, nxt);
            if mv_cmp(nk, ns, key, seq) == std::cmp::Ordering::Less {
                x = nxt;
            } else {
                break;
            }
        }
        preds[level] = x;
    }
    pool.charge_read_batch(seen.len() as u64, VISIT_BYTES);
    raw::next(pool, preds[0], 0)
}

/// A tiny inline set for deduplicating descent visits.
mod smallset {
    pub(super) struct SmallSet {
        inline: [u64; 48],
        len: usize,
        spill: Vec<u64>,
    }

    impl SmallSet {
        pub(super) fn new() -> SmallSet {
            SmallSet {
                inline: [0; 48],
                len: 0,
                spill: Vec::new(),
            }
        }

        pub(super) fn insert(&mut self, v: u64) {
            if self.inline[..self.len].contains(&v) || self.spill.contains(&v) {
                return;
            }
            if self.len < self.inline.len() {
                self.inline[self.len] = v;
                self.len += 1;
            } else {
                self.spill.push(v);
            }
        }

        pub(super) fn len(&self) -> usize {
            self.len + self.spill.len()
        }
    }
}

/// Result of a successful point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// Value bytes (empty for tombstones).
    pub value: Vec<u8>,
    /// Sequence number of the found version.
    pub seq: SequenceNumber,
    /// Put or tombstone.
    pub kind: OpKind,
}

/// A read-only view of a skip list rooted at a head node.
///
/// The view is cheap to clone and safe to use from many threads
/// concurrently with the single designated writer/compactor of the list
/// (see the crate docs for the synchronization discipline).
#[derive(Clone)]
pub struct SkipList {
    pool: Arc<PmemPool>,
    head: u64,
}

impl std::fmt::Debug for SkipList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipList")
            .field("head", &self.head)
            .finish()
    }
}

impl SkipList {
    /// Wraps an existing head node at `head` inside `pool`.
    pub fn from_raw(pool: Arc<PmemPool>, head: u64) -> SkipList {
        SkipList { pool, head }
    }

    /// Offset of the head node.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// The pool this list lives in.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Finds predecessors of the multi-version position `(key, seq)` at
    /// every level, returning the node at `preds[0].next[0]` (the first
    /// node `>= (key, seq)`, or 0).
    pub(crate) fn find_geq(
        &self,
        key: &[u8],
        seq: SequenceNumber,
        preds: &mut [u64; MAX_HEIGHT],
    ) -> u64 {
        find_preds(&self.pool, self.head, key, seq, preds)
    }

    /// Returns the newest version of `key` (including tombstones), or
    /// `None` if the list has no entry for it.
    pub fn get(&self, key: &[u8]) -> Option<LookupResult> {
        let mut preds = [0u64; MAX_HEIGHT];
        let node = self.find_geq(key, miodb_common::MAX_SEQUENCE_NUMBER, &mut preds);
        if node == 0 {
            return None;
        }
        let pool = &*self.pool;
        if raw::key(pool, node) != key {
            return None;
        }
        let value = raw::value(pool, node).to_vec();
        pool.charge_read(value.len());
        Some(LookupResult {
            value,
            seq: raw::seq(pool, node),
            kind: raw::kind(pool, node),
        })
    }

    /// Offset of the first data node (0 when empty).
    pub fn first(&self) -> u64 {
        raw::next(&self.pool, self.head, 0)
    }

    /// Returns `true` if the list has no data nodes.
    pub fn is_empty(&self) -> bool {
        self.first() == 0
    }

    /// Iterates the list in multi-version order from the first node.
    pub fn iter(&self) -> crate::iter::SkipListIter {
        crate::iter::SkipListIter::new(self.pool.clone(), self.first())
    }

    /// Iterates from the first node `>= key` (any version).
    pub fn iter_from(&self, key: &[u8]) -> crate::iter::SkipListIter {
        let mut preds = [0u64; MAX_HEIGHT];
        let start = self.find_geq(key, miodb_common::MAX_SEQUENCE_NUMBER, &mut preds);
        crate::iter::SkipListIter::new(self.pool.clone(), start)
    }

    /// Counts data nodes by walking level 0 — O(n), for tests and reports.
    pub fn count_nodes(&self) -> usize {
        let pool = &*self.pool;
        let mut n = 0;
        let mut cur = self.first();
        while cur != 0 {
            n += 1;
            cur = raw::next(pool, cur, 0);
        }
        n
    }
}
