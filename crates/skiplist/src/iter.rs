//! Forward iteration over a skip list.

use std::sync::Arc;

use miodb_common::{OpKind, SequenceNumber};
use miodb_pmem::PmemPool;

use crate::node::raw;

/// An owned copy of one entry produced by iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedEntry {
    /// User key bytes.
    pub key: Vec<u8>,
    /// Value bytes (empty for tombstones).
    pub value: Vec<u8>,
    /// Sequence number of this version.
    pub seq: SequenceNumber,
    /// Put or tombstone.
    pub kind: OpKind,
}

/// Iterator over a skip list in multi-version order (keys ascending,
/// versions newest-first).
///
/// The iterator copies entries out so it stays valid while compactions
/// re-link the list; it follows level-0 links with acquire loads.
pub struct SkipListIter {
    pool: Arc<PmemPool>,
    cur: u64,
}

impl std::fmt::Debug for SkipListIter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkipListIter")
            .field("cur", &self.cur)
            .finish()
    }
}

impl SkipListIter {
    pub(crate) fn new(pool: Arc<PmemPool>, start: u64) -> SkipListIter {
        SkipListIter { pool, cur: start }
    }

    /// Offset of the node the iterator will yield next (0 when exhausted).
    pub fn position(&self) -> u64 {
        self.cur
    }
}

impl Iterator for SkipListIter {
    type Item = OwnedEntry;

    fn next(&mut self) -> Option<OwnedEntry> {
        if self.cur == 0 {
            return None;
        }
        let pool = &*self.pool;
        raw::charge_visit(pool);
        let entry = OwnedEntry {
            key: raw::key(pool, self.cur).to_vec(),
            value: raw::value(pool, self.cur).to_vec(),
            seq: raw::seq(pool, self.cur),
            kind: raw::kind(pool, self.cur),
        };
        pool.charge_read(entry.value.len());
        self.cur = raw::next(pool, self.cur, 0);
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SkipListArena;
    use miodb_common::Stats;
    use miodb_pmem::DeviceModel;

    #[test]
    fn iterates_all_entries_in_order() {
        let pool = PmemPool::new(1 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap();
        let t = SkipListArena::new(pool, 256 * 1024).unwrap();
        for i in [5u32, 1, 9, 3, 7] {
            t.insert(
                format!("k{i}").as_bytes(),
                format!("v{i}").as_bytes(),
                i as u64,
                OpKind::Put,
            )
            .unwrap();
        }
        let entries: Vec<OwnedEntry> = t.list().iter().collect();
        let keys: Vec<&[u8]> = entries.iter().map(|e| e.key.as_slice()).collect();
        assert_eq!(keys, vec![b"k1" as &[u8], b"k3", b"k5", b"k7", b"k9"]);
        assert_eq!(entries[0].value, b"v1");
    }

    #[test]
    fn empty_iterator() {
        let pool = PmemPool::new(1 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap();
        let t = SkipListArena::new(pool, 64 * 1024).unwrap();
        assert_eq!(t.list().iter().count(), 0);
    }
}
