//! Arena-backed persistent skip lists — the storage structure of MioDB.
//!
//! The paper replaces on-disk SSTables with byte-addressable skip lists
//! ("PMTables") living in NVM, using the *same* data structure as the
//! DRAM-resident MemTable. This crate implements that structure and the
//! three operations the paper builds on it:
//!
//! - [`SkipListArena`]: a skip list built inside one contiguous arena (a
//!   MemTable in the DRAM pool, or a freshly flushed PMTable in the NVM
//!   pool). Multi-version: duplicate keys are ordered newest-first.
//! - [`flush::one_piece_flush`]: copies a frozen MemTable arena into NVM
//!   with a **single bulk memcpy**, then
//!   [`flush::swizzle`] rebases every link word by the constant address
//!   delta — the paper's background pointer swizzling (§4.2).
//! - [`merge::zero_copy_merge`]: merges two PMTables by **re-linking
//!   pointers only** (no data movement, §4.3), publishing every link with a
//!   release store and keeping the in-flight node reachable through a
//!   persistent [`merge::InsertionMark`] so concurrent lock-free readers
//!   never miss it. The merge is resumable after a crash.
//! - [`grow::GrowableSkipList`]: the bottom-level "huge PMTable" data
//!   repository that receives lazy-copy compactions (§4.4).
//!
//! # Examples
//!
//! ```
//! use miodb_common::{OpKind, Stats};
//! use miodb_pmem::{DeviceModel, PmemPool};
//! use miodb_skiplist::SkipListArena;
//! use std::sync::Arc;
//!
//! # fn main() -> miodb_common::Result<()> {
//! let pool = PmemPool::new(1 << 20, DeviceModel::dram(), Arc::new(Stats::new()))?;
//! let table = SkipListArena::new(pool, 64 * 1024)?;
//! table.insert(b"key", b"value", 1, OpKind::Put)?;
//! let found = table.list().get(b"key").expect("present");
//! assert_eq!(found.value, b"value");
//! # Ok(())
//! # }
//! ```

pub mod arena;
pub mod flush;
pub mod grow;
pub mod iter;
pub mod merge;
pub mod node;

pub use arena::SkipListArena;
pub use flush::{one_piece_flush, swizzle, FlushedTable};
pub use grow::GrowableSkipList;
pub use iter::SkipListIter;
pub use merge::{get_skip_marked, zero_copy_merge, InsertionMark, MergeOutcome, MergeStats};
pub use node::{LookupResult, SkipList, MAX_HEIGHT};

/// Worst-case arena bytes one entry can consume (max tower height).
pub fn node_size_upper(klen: usize, vlen: usize) -> u64 {
    node::node_size(MAX_HEIGHT, klen, vlen)
}
