//! Property-based tests: the skip-list stack behaves like a reference
//! model (a `BTreeMap` keyed by key with the newest version winning) under
//! arbitrary operation sequences, flushes and merges.

use std::collections::BTreeMap;
use std::sync::Arc;

use miodb_common::{OpKind, Stats};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_skiplist::{
    flush::flush_and_swizzle, zero_copy_merge, GrowableSkipList, InsertionMark, MergeOutcome,
    SkipListArena,
};
use proptest::prelude::*;

fn dram_pool() -> Arc<PmemPool> {
    PmemPool::new(64 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap()
}

fn nvm_pool() -> Arc<PmemPool> {
    PmemPool::new(
        64 << 20,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap()
}

#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(k, v)| Op::Put(k % 512, v)),
        1 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
    ]
}

fn key_bytes(k: u16) -> Vec<u8> {
    format!("key{k:05}").into_bytes()
}

/// Applies ops to a model map: value of Some(v) for puts, None for
/// tombstones.
fn apply_model(model: &mut BTreeMap<u16, Option<Vec<u8>>>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => {
                model.insert(*k, Some(v.clone()));
            }
            Op::Delete(k) => {
                model.insert(*k, None);
            }
        }
    }
}

fn fill_arena(pool: &Arc<PmemPool>, ops: &[Op], seq_base: u64) -> SkipListArena {
    let arena = SkipListArena::new(pool.clone(), 8 << 20).unwrap();
    for (i, op) in ops.iter().enumerate() {
        let seq = seq_base + i as u64 + 1;
        match op {
            Op::Put(k, v) => arena.insert(&key_bytes(*k), v, seq, OpKind::Put).unwrap(),
            Op::Delete(k) => arena
                .insert(&key_bytes(*k), b"", seq, OpKind::Delete)
                .unwrap(),
        }
    }
    arena
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An arena lookup always returns the newest version written.
    #[test]
    fn arena_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let pool = dram_pool();
        let arena = fill_arena(&pool, &ops, 0);
        let mut model = BTreeMap::new();
        apply_model(&mut model, &ops);
        for (k, expected) in &model {
            let got = arena.list().get(&key_bytes(*k));
            match expected {
                Some(v) => {
                    let r = got.expect("present in model");
                    prop_assert_eq!(r.kind, OpKind::Put);
                    prop_assert_eq!(&r.value, v);
                }
                None => {
                    let r = got.expect("tombstone must be stored");
                    prop_assert_eq!(r.kind, OpKind::Delete);
                }
            }
        }
    }

    /// Iteration yields keys in sorted order with versions newest-first.
    #[test]
    fn arena_iteration_sorted(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let pool = dram_pool();
        let arena = fill_arena(&pool, &ops, 0);
        let entries: Vec<_> = arena.list().iter().collect();
        prop_assert_eq!(entries.len(), ops.len());
        for w in entries.windows(2) {
            let ord = miodb_common::types::mv_cmp(&w[0].key, w[0].seq, &w[1].key, w[1].seq);
            prop_assert_eq!(ord, std::cmp::Ordering::Less, "entries out of order");
        }
    }

    /// One-piece flush + swizzle preserves every lookup.
    #[test]
    fn flush_preserves_lookups(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let dram = dram_pool();
        let nvm = nvm_pool();
        let arena = fill_arena(&dram, &ops, 0);
        let (list, _) = flush_and_swizzle(&arena, &nvm).unwrap();
        let mut model = BTreeMap::new();
        apply_model(&mut model, &ops);
        for (k, expected) in &model {
            let got = list.get(&key_bytes(*k)).expect("present after flush");
            match expected {
                Some(v) => prop_assert_eq!(&got.value, v),
                None => prop_assert_eq!(got.kind, OpKind::Delete),
            }
        }
        prop_assert_eq!(list.count_nodes(), ops.len());
    }

    /// Zero-copy merge of two flushed tables equals the model of "newer
    /// batch overwrites older batch".
    #[test]
    fn merge_matches_model(
        old_ops in proptest::collection::vec(op_strategy(), 1..120),
        new_ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let dram = dram_pool();
        let nvm = nvm_pool();
        let old_arena = fill_arena(&dram, &old_ops, 0);
        let new_arena = fill_arena(&dram, &new_ops, old_ops.len() as u64);
        let (old_list, _) = flush_and_swizzle(&old_arena, &nvm).unwrap();
        let (new_list, _) = flush_and_swizzle(&new_arena, &nvm).unwrap();

        let mark = InsertionMark::alloc(&nvm).unwrap();
        let out = zero_copy_merge(
            &nvm,
            new_list.head(),
            old_list.head(),
            &mark,
            miodb_skiplist::merge::MergeLimits::none(),
        );
        prop_assert!(matches!(out, MergeOutcome::Complete(_)));

        let mut model = BTreeMap::new();
        apply_model(&mut model, &old_ops);
        apply_model(&mut model, &new_ops);

        for (k, expected) in &model {
            let got = old_list.get(&key_bytes(*k)).expect("merged view lost a key");
            match expected {
                Some(v) => {
                    prop_assert_eq!(got.kind, OpKind::Put);
                    prop_assert_eq!(&got.value, v);
                }
                None => prop_assert_eq!(got.kind, OpKind::Delete),
            }
        }
        // Every key that passed through the merge is deduplicated to one
        // version; keys only present in the oldtable may legitimately keep
        // multiple versions (they are collapsed later, by lazy-copy).
        let nodes = old_list.count_nodes();
        prop_assert!(nodes >= model.len());
        prop_assert!(nodes <= old_ops.len() + new_ops.len());
        let mut new_keys: Vec<Vec<u8>> = new_ops
            .iter()
            .map(|op| match op {
                Op::Put(k, _) | Op::Delete(k) => key_bytes(*k),
            })
            .collect();
        new_keys.sort();
        new_keys.dedup();
        for key in &new_keys {
            let versions = old_list
                .iter_from(key)
                .take_while(|e| &e.key == key)
                .count();
            prop_assert_eq!(versions, 1, "merged key retained multiple versions");
        }
        prop_assert!(new_list.is_empty());
    }

    /// A zero-copy merge abandoned at an arbitrary pointer-write (crash)
    /// and then resumed must converge to exactly the model state.
    #[test]
    fn merge_crash_resume_matches_model(
        old_ops in proptest::collection::vec(op_strategy(), 1..60),
        new_ops in proptest::collection::vec(op_strategy(), 1..60),
        crash_at in 1u64..400,
    ) {
        let dram = dram_pool();
        let nvm = nvm_pool();
        let old_arena = fill_arena(&dram, &old_ops, 0);
        let new_arena = fill_arena(&dram, &new_ops, old_ops.len() as u64);
        let (old_list, _) = flush_and_swizzle(&old_arena, &nvm).unwrap();
        let (new_list, _) = flush_and_swizzle(&new_arena, &nvm).unwrap();
        let mark = InsertionMark::alloc(&nvm).unwrap();

        let out = zero_copy_merge(
            &nvm,
            new_list.head(),
            old_list.head(),
            &mark,
            miodb_skiplist::merge::MergeLimits {
                max_steps: None,
                abandon_after_link_writes: Some(crash_at),
            },
        );
        if !out.is_complete() {
            // "Restart" and resume with no limits.
            let out2 = zero_copy_merge(
                &nvm,
                new_list.head(),
                old_list.head(),
                &mark,
                miodb_skiplist::merge::MergeLimits::none(),
            );
            prop_assert!(matches!(out2, MergeOutcome::Complete(_)));
        }

        let mut model = BTreeMap::new();
        apply_model(&mut model, &old_ops);
        apply_model(&mut model, &new_ops);
        for (k, expected) in &model {
            let got = old_list.get(&key_bytes(*k)).expect("merged view lost a key");
            match expected {
                Some(v) => {
                    prop_assert_eq!(got.kind, OpKind::Put);
                    prop_assert_eq!(&got.value, v);
                }
                None => prop_assert_eq!(got.kind, OpKind::Delete),
            }
        }
        prop_assert!(new_list.is_empty());
        prop_assert!(mark.load().is_none());
    }

    /// The repository applies a versioned stream and ends up with exactly
    /// the live set of the model (no tombstones, one version per key).
    #[test]
    fn repository_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let nvm = nvm_pool();
        let repo = GrowableSkipList::new(nvm, 256 * 1024).unwrap();
        for (i, op) in ops.iter().enumerate() {
            let seq = i as u64 + 1;
            match op {
                Op::Put(k, v) => { repo.apply(&key_bytes(*k), v, seq, OpKind::Put).unwrap(); }
                Op::Delete(k) => { repo.apply(&key_bytes(*k), b"", seq, OpKind::Delete).unwrap(); }
            }
        }
        let mut model = BTreeMap::new();
        apply_model(&mut model, &ops);
        let live: Vec<_> = model.iter().filter_map(|(k, v)| v.as_ref().map(|v| (*k, v.clone()))).collect();
        prop_assert_eq!(repo.len(), live.len());
        for (k, v) in &live {
            prop_assert_eq!(repo.get(&key_bytes(*k)).expect("live key missing").value, v.clone());
        }
        for (k, v) in &model {
            if v.is_none() {
                prop_assert!(repo.get(&key_bytes(*k)).is_none(), "tombstoned key visible");
            }
        }
        prop_assert_eq!(repo.list().count_nodes(), live.len());
    }
}
