//! Replication-shipping properties: the framed record bytes the WAL
//! persists are exactly what a leader ships and a follower decodes, so
//! one CRC covers the NVM copy, the wire copy and the replay — plus
//! `replay_chain` edge cases (empty chain, single partially-filled
//! segment) the property generator rarely lands on.

use std::sync::Arc;

use miodb_common::proto::{Opcode, ReplBatch, Response};
use miodb_common::{OpKind, Stats};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_wal::{decode_record_bytes, encode_group_record, GroupOp, WriteAheadLog};
use proptest::prelude::*;

fn pool() -> Arc<PmemPool> {
    PmemPool::new(
        16 << 20,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap()
}

#[derive(Debug, Clone)]
struct Op {
    key: Vec<u8>,
    value: Vec<u8>,
    delete: bool,
}

fn groups() -> impl Strategy<Value = Vec<Vec<Op>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                proptest::collection::vec(any::<u8>(), 1..32),
                proptest::collection::vec(any::<u8>(), 0..200),
                any::<bool>(),
            )
                .prop_map(|(key, value, delete)| Op { key, value, delete }),
            1..12,
        ),
        1..20,
    )
}

fn as_group_ops(ops: &[Op]) -> Vec<GroupOp<'_>> {
    ops.iter()
        .map(|o| GroupOp {
            key: &o.key,
            value: if o.delete { b"" } else { &o.value },
            kind: if o.delete {
                OpKind::Delete
            } else {
                OpKind::Put
            },
        })
        .collect()
}

/// Pushes `bytes` through the `ReplRecords` wire encoding and back,
/// asserting the payload survives byte-identically.
fn wire_round_trip(bytes: &[u8], seq_first: u64, seq_last: u64) -> Vec<u8> {
    let resp = Response::ReplRecords {
        epoch: 1,
        batches: vec![ReplBatch {
            seq_first,
            seq_last,
            bytes: bytes.to_vec(),
        }],
    };
    let mut body = Vec::new();
    resp.encode_body(&mut body);
    let decoded = Response::decode(resp.opcode(Opcode::ReplRecords), &body).unwrap();
    match decoded {
        Response::ReplRecords { mut batches, epoch } => {
            assert_eq!(epoch, 1, "epoch must survive the wire round trip");
            assert_eq!(batches.len(), 1);
            let b = batches.pop().unwrap();
            assert_eq!(b.seq_first, seq_first);
            assert_eq!(b.seq_last, seq_last);
            b.bytes
        }
        other => panic!("wrong decode: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Group-commit records survive the whole shipping pipeline:
    /// `encode_group_record` → WAL append → wire re-encode → follower
    /// decode → replay, with byte-identical framing and dense sequence
    /// coverage at every hop.
    #[test]
    fn shipped_groups_replay_byte_identical_and_dense(groups in groups()) {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 1 << 16).unwrap();
        let mut shipped: Vec<Vec<u8>> = Vec::new();
        let mut expect: Vec<(Vec<u8>, Vec<u8>, bool)> = Vec::new();
        let mut seq_base = 1u64;
        for ops in &groups {
            let gops = as_group_ops(ops);
            let bytes = encode_group_record(&gops, seq_base).unwrap();
            // The engine appends the identical framing it publishes.
            wal.append_group(&gops, seq_base).unwrap();
            let seq_last = seq_base + ops.len() as u64 - 1;
            let on_wire = wire_round_trip(&bytes, seq_base, seq_last);
            prop_assert_eq!(&on_wire, &bytes, "wire copy must be byte-identical");
            shipped.push(on_wire);
            for g in &gops {
                expect.push((g.key.to_vec(), g.value.to_vec(), g.kind.is_delete()));
            }
            seq_base = seq_last + 1;
        }

        // Follower path: decode each shipped frame and check density.
        let mut follower: Vec<miodb_wal::WalRecord> = Vec::new();
        for bytes in &shipped {
            follower.extend(decode_record_bytes(bytes).unwrap());
        }
        prop_assert_eq!(follower.len(), expect.len());
        for (i, rec) in follower.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64 + 1, "sequence coverage must be dense");
            prop_assert_eq!(&rec.key, &expect[i].0);
            prop_assert_eq!(&rec.value, &expect[i].1);
            prop_assert_eq!(rec.kind.is_delete(), expect[i].2);
        }

        // Leader-crash path: replaying the local WAL yields the exact same
        // records the follower decoded — one encoding, two consumers.
        let (replayed, _) = WriteAheadLog::replay_chain(&p, wal.segments()[0]).unwrap();
        prop_assert_eq!(replayed.len(), follower.len());
        for (a, b) in replayed.iter().zip(&follower) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(&a.value, &b.value);
            prop_assert_eq!(a.seq, b.seq);
            prop_assert_eq!(a.kind.is_delete(), b.kind.is_delete());
        }
    }
}

#[test]
fn replay_chain_of_empty_log_yields_nothing() {
    let p = pool();
    let wal = WriteAheadLog::new(p.clone(), 4096).unwrap();
    let segments = wal.segments();
    assert_eq!(segments.len(), 1, "a fresh log is one empty segment");
    let (records, segs) = WriteAheadLog::replay_chain(&p, segments[0]).unwrap();
    assert!(records.is_empty(), "empty chain replays to nothing");
    assert_eq!(segs.len(), 1);
}

#[test]
fn replay_chain_of_partially_filled_segment_is_exact() {
    let p = pool();
    // Segment far larger than the two records: stays partially filled.
    let wal = WriteAheadLog::new(p.clone(), 1 << 16).unwrap();
    wal.append(b"alpha", b"1", 1, OpKind::Put).unwrap();
    wal.append(b"beta", b"", 2, OpKind::Delete).unwrap();
    assert_eq!(
        wal.segments().len(),
        1,
        "both records fit the first segment"
    );
    let (records, segs) = WriteAheadLog::replay_chain(&p, wal.segments()[0]).unwrap();
    assert_eq!(segs.len(), 1);
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].key, b"alpha");
    assert_eq!(records[0].seq, 1);
    assert!(!records[0].kind.is_delete());
    assert_eq!(records[1].key, b"beta");
    assert_eq!(records[1].seq, 2);
    assert!(records[1].kind.is_delete());
}

#[test]
fn decode_rejects_any_defect() {
    let bytes = encode_group_record(
        &[GroupOp {
            key: b"k",
            value: b"v",
            kind: OpKind::Put,
        }],
        7,
    )
    .unwrap();
    // Clean decode first.
    let records = decode_record_bytes(&bytes).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].seq, 7);
    // A single flipped bit anywhere must surface as Corruption — shipped
    // bytes are all-or-nothing, unlike replay's accept-the-prefix.
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0x10;
        let err = decode_record_bytes(&bad).unwrap_err();
        assert!(
            err.is_corruption(),
            "byte {i}: expected corruption, got {err}"
        );
    }
    // Truncation at every boundary must error too, never panic.
    for cut in 0..bytes.len() {
        assert!(decode_record_bytes(&bytes[..cut]).is_err() || cut == 0);
    }
}
