//! WAL fault-point tests.
//!
//! These live in their own integration binary (not `src/lib.rs` unit tests)
//! because arming a point is process-global: every test here takes
//! [`fault::exclusive`], so they serialize among themselves and never race
//! the unit tests' un-instrumented appends.

use std::sync::Arc;

use miodb_common::fault::{self, points, FaultPolicy};
use miodb_common::{Error, OpKind, Stats};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_wal::WriteAheadLog;

fn pool() -> Arc<PmemPool> {
    PmemPool::new(
        8 << 20,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap()
}

#[test]
fn pre_crc_fault_leaves_log_clean() {
    let _g = fault::exclusive();
    let p = pool();
    let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
    wal.append(b"before", b"v", 1, OpKind::Put).unwrap();
    fault::arm(points::WAL_APPEND_PRE_CRC, FaultPolicy::FailOnce(1));
    let err = wal.append(b"lost", b"v", 2, OpKind::Put).unwrap_err();
    assert!(matches!(err, Error::Io(_)), "typed error, got {err}");
    // Nothing reached the log, so the next append lands right after the
    // first record and replay sees a clean two-record log.
    wal.append(b"after", b"v", 3, OpKind::Put).unwrap();
    let records = WriteAheadLog::replay(&p, &wal.segments()).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].key, b"before");
    assert_eq!(records[1].key, b"after");
    assert_eq!(fault::triggered(points::WAL_APPEND_PRE_CRC), 1);
}

#[test]
fn torn_fault_poisons_log_and_replay_keeps_acknowledged_prefix() {
    let _g = fault::exclusive();
    let p = pool();
    let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
    wal.append(b"acked1", b"v", 1, OpKind::Put).unwrap();
    wal.append(b"acked2", b"v", 2, OpKind::Put).unwrap();
    fault::arm(points::WAL_APPEND_TORN, FaultPolicy::TornWrite);
    let err = wal.append(b"torn", b"victim", 3, OpKind::Put).unwrap_err();
    assert!(matches!(err, Error::Io(_)), "typed error, got {err}");
    assert!(wal.poisoned());
    // The tear is one-shot, but the log stays poisoned: appending past a
    // torn record would silently lose the new write at replay.
    let err = wal.append(b"after", b"v", 4, OpKind::Put).unwrap_err();
    assert!(matches!(err, Error::Io(_)));
    fault::disarm_all();
    assert!(wal.append(b"still-poisoned", b"v", 5, OpKind::Put).is_err());
    // Replay yields exactly the acknowledged prefix — unacknowledged
    // writes are absent, acknowledged ones all present.
    let records = WriteAheadLog::replay(&p, &wal.segments()).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].key, b"acked1");
    assert_eq!(records[1].key, b"acked2");
}

#[test]
fn torn_group_append_loses_whole_group_only() {
    let _g = fault::exclusive();
    let p = pool();
    let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
    let acked = vec![
        (b"a1".to_vec(), b"v".to_vec(), OpKind::Put),
        (b"a2".to_vec(), b"v".to_vec(), OpKind::Put),
    ];
    wal.append_batch(&acked, 1).unwrap();
    fault::arm(points::WAL_APPEND_TORN, FaultPolicy::TornWrite);
    let victim = vec![
        (b"b1".to_vec(), b"v".to_vec(), OpKind::Put),
        (b"b2".to_vec(), b"v".to_vec(), OpKind::Put),
    ];
    assert!(wal.append_batch(&victim, 3).is_err());
    fault::disarm_all();
    let records = WriteAheadLog::replay(&p, &wal.segments()).unwrap();
    let keys: Vec<&[u8]> = records.iter().map(|r| r.key.as_slice()).collect();
    assert_eq!(keys, vec![b"a1".as_slice(), b"a2".as_slice()]);
}

#[test]
fn alloc_fault_surfaces_as_pool_exhausted() {
    let _g = fault::exclusive();
    let p = pool();
    // Small segments force a segment allocation quickly.
    let wal = WriteAheadLog::new(p.clone(), 4096).unwrap();
    fault::arm(points::PMEM_ALLOC, FaultPolicy::FailNth(1));
    let value = vec![7u8; 3000];
    let mut saw_exhausted = false;
    for i in 0..4u64 {
        match wal.append(b"k", &value, i, OpKind::Put) {
            Ok(()) => {}
            Err(Error::PoolExhausted { .. }) => {
                saw_exhausted = true;
                break;
            }
            Err(e) => panic!("expected PoolExhausted, got {e}"),
        }
    }
    assert!(saw_exhausted, "segment growth should hit the alloc fault");
    fault::disarm_all();
    // The log is not poisoned by an alloc failure: appends resume.
    wal.append(b"resume", b"v", 99, OpKind::Put).unwrap();
    let records = WriteAheadLog::replay(&p, &wal.segments()).unwrap();
    assert_eq!(records.last().unwrap().key, b"resume");
}
