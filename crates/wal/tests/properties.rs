//! Property tests for the write-ahead log: arbitrary record streams must
//! replay exactly, and any torn tail must truncate to a strict prefix.

use std::sync::Arc;

use miodb_common::{OpKind, Stats};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_wal::WriteAheadLog;
use proptest::prelude::*;

fn pool() -> Arc<PmemPool> {
    PmemPool::new(
        16 << 20,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap()
}

#[derive(Debug, Clone)]
struct Rec {
    key: Vec<u8>,
    value: Vec<u8>,
    delete: bool,
}

fn recs() -> impl Strategy<Value = Vec<Rec>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<u8>(), 1..40),
            proptest::collection::vec(any::<u8>(), 0..600),
            any::<bool>(),
        )
            .prop_map(|(key, value, delete)| Rec { key, value, delete }),
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn replay_is_exact(records in recs()) {
        let p = pool();
        // Small segments force chain growth.
        let wal = WriteAheadLog::new(p.clone(), 4096).unwrap();
        for (i, r) in records.iter().enumerate() {
            let kind = if r.delete { OpKind::Delete } else { OpKind::Put };
            let value: &[u8] = if r.delete { b"" } else { &r.value };
            wal.append(&r.key, value, i as u64 + 1, kind).unwrap();
        }
        let first = wal.segments()[0];
        let (replayed, segs) = WriteAheadLog::replay_chain(&p, first).unwrap();
        prop_assert_eq!(replayed.len(), records.len());
        prop_assert_eq!(segs.len(), wal.segments().len());
        for (i, (got, want)) in replayed.iter().zip(&records).enumerate() {
            prop_assert_eq!(&got.key, &want.key);
            prop_assert_eq!(got.seq, i as u64 + 1);
            prop_assert_eq!(got.kind.is_delete(), want.delete);
            if !want.delete {
                prop_assert_eq!(&got.value, &want.value);
            }
        }
    }

    /// Flip one byte anywhere in the log's segments: replay must still
    /// succeed and yield a prefix (possibly shorter), never garbage.
    #[test]
    fn single_corruption_truncates_to_prefix(
        records in recs(),
        flip in any::<u64>(),
    ) {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 4096).unwrap();
        for (i, r) in records.iter().enumerate() {
            wal.append(&r.key, &r.value, i as u64 + 1, OpKind::Put).unwrap();
        }
        let segments = wal.segments();
        // Corrupt a byte in a record area (skip the chain headers, whose
        // corruption is caught by the pool-bounds check instead).
        let seg = segments[(flip % segments.len() as u64) as usize];
        let off = seg.offset + 16 + (flip / 7) % (seg.len - 17);
        let mut b = [0u8; 1];
        p.read_bytes(off, &mut b);
        p.write_bytes(off, &[b[0] ^ 0x40]);

        let (replayed, _) = match WriteAheadLog::replay_chain(&p, segments[0]) {
            Ok(x) => x,
            Err(e) => {
                // Structural corruption is allowed to error, never panic.
                prop_assert!(e.is_corruption());
                return Ok(());
            }
        };
        prop_assert!(replayed.len() <= records.len());
        for (got, want) in replayed.iter().zip(&records) {
            // Whatever replays must be an exact prefix... unless the
            // corrupted byte sat inside this record's value and the crc
            // caught it (then replay stopped before it).
            prop_assert_eq!(&got.key, &want.key);
        }
    }
}
