//! NVM-resident write-ahead log.
//!
//! MioDB appends every write to a persistent log **before** inserting it
//! into the DRAM MemTable (paper §4.7): random-access insertion happens in
//! fast DRAM while the NVM sees only a sequential append. One log exists
//! per MemTable generation; after the MemTable has been one-piece-flushed
//! (and is therefore itself persistent), its log is discarded.
//!
//! Record layout (little-endian):
//!
//! ```text
//! crc32   u32   over everything after this field
//! len     u32   payload length (seq..value)
//! seq     u64
//! kind    u8
//! klen    u32
//! vlen    u32
//! key     klen bytes
//! value   vlen bytes
//! ```
//!
//! Replay stops at the first record whose checksum fails or whose header is
//! zero — exactly the torn-tail semantics of a crash during append.

use std::sync::Arc;

use miodb_common::crc32::Crc32;
use miodb_common::{fault, Error, OpKind, Result, SequenceNumber};
use miodb_pmem::{PmemPool, PmemRegion};
use parking_lot::Mutex;

const RECORD_HEADER: usize = 4 + 4; // crc + len
const PAYLOAD_FIXED: usize = 8 + 1 + 4 + 4; // seq + kind + klen + vlen
/// Per-segment header: (next_offset u64, next_len u64). Segments form a
/// persistent chain so replay finds every segment even if the manifest's
/// segment list is stale (a segment allocated after the last manifest
/// store would otherwise be lost, dropping acknowledged writes and
/// reusing their sequence numbers after recovery).
const SEGMENT_HEADER: usize = 16;
/// Record kind byte marking a multi-operation batch payload.
const BATCH_KIND: u8 = 2;

/// One operation of a write group, borrowing the caller's buffers (the
/// group leader logs on behalf of writers that are still parked, so no
/// copy is taken).
#[derive(Debug, Clone, Copy)]
pub struct GroupOp<'a> {
    /// User key.
    pub key: &'a [u8],
    /// Value (empty for tombstones).
    pub value: &'a [u8],
    /// Put or tombstone.
    pub kind: OpKind,
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// User key.
    pub key: Vec<u8>,
    /// Value (empty for tombstones).
    pub value: Vec<u8>,
    /// Sequence number.
    pub seq: SequenceNumber,
    /// Put or tombstone.
    pub kind: OpKind,
}

/// Encodes one single-op record exactly as [`WriteAheadLog::append`]
/// persists it: `crc32 | len | seq | kind | klen | vlen | key | value`,
/// CRC patched in. The returned bytes are what the log stores **and**
/// what replication ships, so one checksum covers both copies.
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] for oversized keys or values.
pub fn encode_record(
    key: &[u8],
    value: &[u8],
    seq: SequenceNumber,
    kind: OpKind,
) -> Result<Vec<u8>> {
    if key.len() > u32::MAX as usize || value.len() > u32::MAX as usize {
        return Err(Error::InvalidArgument(
            "key/value too large for wal".to_string(),
        ));
    }
    let payload_len = PAYLOAD_FIXED + key.len() + value.len();
    let mut buf = Vec::with_capacity(RECORD_HEADER + payload_len);
    buf.extend_from_slice(&[0u8; 4]); // crc placeholder
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(kind as u8);
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
    patch_crc(&mut buf);
    Ok(buf)
}

/// Encodes a whole write group (or batch) as **one** crc-framed record,
/// exactly as [`WriteAheadLog::append_group`] persists it. Operations
/// receive consecutive sequence numbers starting at `seq_base`. An empty
/// group encodes to an empty buffer (nothing to log or ship).
///
/// # Errors
///
/// Returns [`Error::InvalidArgument`] for oversized keys or values.
pub fn encode_group_record(ops: &[GroupOp<'_>], seq_base: SequenceNumber) -> Result<Vec<u8>> {
    if ops.is_empty() {
        return Ok(Vec::new());
    }
    let body: usize = ops.iter().map(|op| 9 + op.key.len() + op.value.len()).sum();
    let payload_len = 8 + 1 + 4 + body;
    let mut buf = Vec::with_capacity(RECORD_HEADER + payload_len);
    buf.extend_from_slice(&[0u8; 4]); // crc placeholder
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&seq_base.to_le_bytes());
    buf.push(BATCH_KIND);
    buf.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        if op.key.len() > u32::MAX as usize || op.value.len() > u32::MAX as usize {
            return Err(Error::InvalidArgument(
                "key/value too large for wal".to_string(),
            ));
        }
        buf.push(op.kind as u8);
        buf.extend_from_slice(&(op.key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(op.value.len() as u32).to_le_bytes());
        buf.extend_from_slice(op.key);
        buf.extend_from_slice(op.value);
    }
    patch_crc(&mut buf);
    Ok(buf)
}

/// Decodes a run of consecutive framed records (as produced by
/// [`encode_record`] / [`encode_group_record`], possibly concatenated)
/// back into individual [`WalRecord`]s.
///
/// Unlike [`WriteAheadLog::replay`], which treats a bad checksum as the
/// log's torn tail, shipped bytes arrive over a CRC-protected transport
/// and must be perfect: any framing or checksum defect is an error here.
///
/// # Errors
///
/// Returns [`Error::Corruption`] for truncated framing, checksum
/// mismatches or malformed payloads.
pub fn decode_record_bytes(bytes: &[u8]) -> Result<Vec<WalRecord>> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        if off + RECORD_HEADER > bytes.len() {
            return Err(Error::Corruption("truncated wal record header".to_string()));
        }
        let stored_crc = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as usize;
        if len < PAYLOAD_FIXED {
            return Err(Error::Corruption(format!("wal record too short: {len}")));
        }
        let end = off + RECORD_HEADER + len;
        if end > bytes.len() {
            return Err(Error::Corruption(
                "truncated wal record payload".to_string(),
            ));
        }
        let payload = &bytes[off + RECORD_HEADER..end];
        let mut crc = Crc32::new();
        crc.update(&(len as u32).to_le_bytes());
        crc.update(payload);
        if crc.finish() != stored_crc {
            return Err(Error::Corruption("wal record crc mismatch".to_string()));
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        if payload[8] == BATCH_KIND {
            if !decode_batch(payload, seq, &mut out) {
                return Err(Error::Corruption("malformed wal batch record".to_string()));
            }
        } else {
            let kind = OpKind::from_u8(payload[8])
                .ok_or_else(|| Error::Corruption("bad wal op kind".to_string()))?;
            let klen = u32::from_le_bytes(payload[9..13].try_into().unwrap()) as usize;
            let vlen = u32::from_le_bytes(payload[13..17].try_into().unwrap()) as usize;
            if PAYLOAD_FIXED + klen + vlen != len {
                return Err(Error::Corruption("bad wal record lengths".to_string()));
            }
            out.push(WalRecord {
                key: payload[PAYLOAD_FIXED..PAYLOAD_FIXED + klen].to_vec(),
                value: payload[PAYLOAD_FIXED + klen..].to_vec(),
                seq,
                kind,
            });
        }
        off = end;
    }
    Ok(out)
}

/// Computes and stores the leading crc32 of a framed record buffer.
fn patch_crc(buf: &mut [u8]) {
    let mut crc = Crc32::new();
    crc.update(&buf[4..]);
    let crc = crc.finish().to_le_bytes();
    buf[..4].copy_from_slice(&crc);
}

#[derive(Debug)]
struct WalState {
    segments: Vec<PmemRegion>,
    cursor: u64,
    end: u64,
    /// Set when a torn write left a detectably-partial record at the tail.
    /// Appending past it would put a good record *after* the tear, which
    /// replay (correctly) never reads — silently losing an acknowledged
    /// write. So the log fails all further appends until the MemTable
    /// rotates onto a fresh log.
    poisoned: bool,
}

/// An append-only log of one MemTable generation, stored in the NVM pool.
pub struct WriteAheadLog {
    pool: Arc<PmemPool>,
    segment_size: usize,
    state: Mutex<WalState>,
}

impl std::fmt::Debug for WriteAheadLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("WriteAheadLog")
            .field("segments", &s.segments.len())
            .field("cursor", &s.cursor)
            .finish()
    }
}

impl WriteAheadLog {
    /// Opens a fresh log that grows in `segment_size`-byte NVM segments.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PoolExhausted`] if the first segment cannot be
    /// allocated.
    pub fn new(pool: Arc<PmemPool>, segment_size: usize) -> Result<WriteAheadLog> {
        let segment_size = segment_size.max(4096);
        let first = pool.alloc(segment_size)?;
        // Zero the chain header and the first record header so replay of
        // an empty log stops immediately.
        pool.write_bytes(first.offset, &[0u8; SEGMENT_HEADER + RECORD_HEADER]);
        Ok(WriteAheadLog {
            pool,
            segment_size,
            state: Mutex::new(WalState {
                cursor: first.offset + SEGMENT_HEADER as u64,
                end: first.end(),
                segments: vec![first],
                poisoned: false,
            }),
        })
    }

    /// Appends a record; the write is persistent (modeled) when this
    /// returns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PoolExhausted`] when a new segment is needed and
    /// the pool is full, and [`Error::InvalidArgument`] for oversized keys
    /// or values.
    pub fn append(
        &self,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<()> {
        self.append_record(encode_record(key, value, seq, kind)?)
    }

    /// Appends a whole batch as **one** crc-framed record: after a crash,
    /// either every operation of the batch replays or none does (the
    /// durability half of LevelDB's `WriteBatch` semantics). Operations
    /// receive consecutive sequence numbers starting at `seq_base`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`WriteAheadLog::append`].
    pub fn append_batch(
        &self,
        entries: &[(Vec<u8>, Vec<u8>, OpKind)],
        seq_base: SequenceNumber,
    ) -> Result<()> {
        let ops: Vec<GroupOp<'_>> = entries
            .iter()
            .map(|(key, value, kind)| GroupOp {
                key,
                value,
                kind: *kind,
            })
            .collect();
        self.append_group(&ops, seq_base)
    }

    /// Appends a whole **write group** as one crc-framed record — the
    /// group-commit fast path: one record header, one modeled NVM append
    /// for every operation of every writer in the group. Operations
    /// receive consecutive sequence numbers starting at `seq_base`, in
    /// slice order, and replay all-or-nothing like a batch.
    ///
    /// The encode buffer is sized exactly from the group's byte length up
    /// front, so large groups never reallocate mid-encode.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`WriteAheadLog::append`].
    pub fn append_group(&self, ops: &[GroupOp<'_>], seq_base: SequenceNumber) -> Result<()> {
        let buf = encode_group_record(ops, seq_base)?;
        if buf.is_empty() {
            return Ok(());
        }
        self.append_record(buf)
    }

    /// Appends one fully framed record (`crc | len | payload`, crc already
    /// patched by the encoder).
    fn append_record(&self, buf: Vec<u8>) -> Result<()> {
        if fault::hit(fault::points::WAL_APPEND_PRE_CRC).is_some() {
            // Injected fsync-style failure before persistence: nothing
            // reaches the log, the tail stays clean, and later appends may
            // succeed.
            return Err(Error::Io(std::io::Error::other(
                "injected wal append failure",
            )));
        }
        let total = buf.len();
        let mut s = self.state.lock();
        if s.poisoned {
            return Err(Error::Io(std::io::Error::other(
                "wal poisoned by earlier torn write; rotate the memtable",
            )));
        }
        // Leave room for a zero header terminator at the segment tail.
        if s.cursor + (total + RECORD_HEADER) as u64 > s.end {
            let seg_len = self
                .segment_size
                .max(total + RECORD_HEADER + SEGMENT_HEADER);
            let seg = self.pool.alloc(seg_len)?;
            // Initialize the new segment fully, then link it from the
            // current segment's chain header — replay never observes a
            // half-initialized segment.
            self.pool
                .write_bytes(seg.offset, &[0u8; SEGMENT_HEADER + RECORD_HEADER]);
            // Invariant: `segments` is non-empty from construction onwards
            // (`new` seeds it with the first segment).
            let prev = *s.segments.last().unwrap();
            let mut link = [0u8; SEGMENT_HEADER];
            link[0..8].copy_from_slice(&seg.offset.to_le_bytes());
            link[8..16].copy_from_slice(&seg.len.to_le_bytes());
            self.pool.write_bytes(prev.offset, &link);
            s.cursor = seg.offset + SEGMENT_HEADER as u64;
            s.end = seg.end();
            s.segments.push(seg);
        }
        let off = s.cursor;
        // Terminator for torn-tail detection, then the record itself. The
        // record's first bytes (the crc) are written last-ish by virtue of
        // being part of one bulk write; a torn write is caught by the crc.
        self.pool
            .write_bytes(off + total as u64, &[0u8; RECORD_HEADER]);
        if fault::hit(fault::points::WAL_APPEND_TORN).is_some() {
            // Injected crash mid-append: the header (with the final crc)
            // lands, the payload is cut short. Replay sees a crc mismatch
            // and stops at the previous record; this log is poisoned until
            // rotation (see `WalState::poisoned`).
            self.pool.write_bytes(off, &buf[..total / 2]);
            s.poisoned = true;
            return Err(Error::Io(std::io::Error::other("injected torn wal append")));
        }
        s.cursor += total as u64;
        self.pool.write_bytes(off, &buf);
        Ok(())
    }

    /// True once a torn write has poisoned the log (all appends fail until
    /// the owning MemTable rotates onto a fresh log).
    pub fn poisoned(&self) -> bool {
        self.state.lock().poisoned
    }

    /// Total bytes appended so far (all segments).
    pub fn bytes_written(&self) -> u64 {
        let s = self.state.lock();
        let full: u64 = s.segments[..s.segments.len() - 1]
            .iter()
            .map(|r| r.len)
            .sum();
        // Invariant: `segments` is non-empty from construction onwards.
        full + (s.cursor - s.segments.last().unwrap().offset) - SEGMENT_HEADER as u64
    }

    /// Segment regions, for the manifest.
    pub fn segments(&self) -> Vec<PmemRegion> {
        self.state.lock().segments.clone()
    }

    /// Frees every segment, consuming the log (called after the MemTable
    /// it protected has been flushed).
    pub fn release(self) {
        let s = self.state.into_inner();
        for seg in s.segments {
            self.pool.free(seg);
        }
    }

    /// Replays the log starting from its first segment, following the
    /// persistent segment chain (so segments allocated after the last
    /// manifest store are still found). Returns the decoded records and
    /// every segment visited (for reclamation). Replay of a segment stops
    /// at the first torn or absent record.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] only for structurally impossible
    /// states (e.g. record length exceeding its segment, a cyclic chain);
    /// a bad checksum is treated as the log's end, not an error.
    pub fn replay_chain(
        pool: &PmemPool,
        first: PmemRegion,
    ) -> Result<(Vec<WalRecord>, Vec<PmemRegion>)> {
        let mut segments = Vec::new();
        let mut seg = first;
        loop {
            segments.push(seg);
            if segments.len() > 1_000_000 {
                return Err(Error::Corruption("wal segment chain too long".to_string()));
            }
            let mut header = [0u8; SEGMENT_HEADER];
            pool.read_bytes(seg.offset, &mut header);
            let next_off = u64::from_le_bytes(header[0..8].try_into().unwrap());
            let next_len = u64::from_le_bytes(header[8..16].try_into().unwrap());
            if next_off == 0 || next_len == 0 {
                break;
            }
            if next_off + next_len > pool.capacity() as u64 {
                return Err(Error::Corruption(
                    "wal chain points outside pool".to_string(),
                ));
            }
            seg = PmemRegion {
                offset: next_off,
                len: next_len,
            };
        }
        let records = Self::replay(pool, &segments)?;
        Ok((records, segments))
    }

    /// Replays the records of `segments` (in order) from `pool`, stopping
    /// at the first torn or absent record of each segment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] only for structurally impossible
    /// states (e.g. record length exceeding its segment); a bad checksum is
    /// treated as the log's end, not an error.
    pub fn replay(pool: &PmemPool, segments: &[PmemRegion]) -> Result<Vec<WalRecord>> {
        let mut out = Vec::new();
        'segments: for seg in segments {
            let mut off = seg.offset + SEGMENT_HEADER as u64;
            loop {
                if off + RECORD_HEADER as u64 > seg.end() {
                    break;
                }
                let mut header = [0u8; RECORD_HEADER];
                pool.read_bytes(off, &mut header);
                let stored_crc = u32::from_le_bytes(header[0..4].try_into().unwrap());
                let len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
                if len == 0 {
                    // Normal end of this segment; appends continue in the
                    // next chained segment (which only exists if every
                    // record here completed).
                    break;
                }
                if len < PAYLOAD_FIXED {
                    break 'segments; // torn header: the log ends here
                }
                if off + (RECORD_HEADER + len) as u64 > seg.end() {
                    return Err(Error::Corruption(format!(
                        "wal record of {len} bytes exceeds segment"
                    )));
                }
                let mut payload = vec![0u8; len];
                pool.read_bytes(off + RECORD_HEADER as u64, &mut payload);
                let mut crc = Crc32::new();
                crc.update(&(len as u32).to_le_bytes());
                crc.update(&payload);
                if crc.finish() != stored_crc {
                    break 'segments; // torn record: the log ends here
                }
                let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
                if payload[8] == BATCH_KIND {
                    if !decode_batch(&payload, seq, &mut out) {
                        break 'segments; // torn batch framing
                    }
                } else {
                    let kind = OpKind::from_u8(payload[8])
                        .ok_or_else(|| Error::Corruption("bad wal op kind".to_string()))?;
                    let klen = u32::from_le_bytes(payload[9..13].try_into().unwrap()) as usize;
                    let vlen = u32::from_le_bytes(payload[13..17].try_into().unwrap()) as usize;
                    if PAYLOAD_FIXED + klen + vlen != len {
                        break 'segments; // torn lengths: the log ends here
                    }
                    out.push(WalRecord {
                        key: payload[PAYLOAD_FIXED..PAYLOAD_FIXED + klen].to_vec(),
                        value: payload[PAYLOAD_FIXED + klen..].to_vec(),
                        seq,
                        kind,
                    });
                }
                off += (RECORD_HEADER + len) as u64;
            }
        }
        Ok(out)
    }
}

/// Decodes a batch payload into individual records with consecutive
/// sequence numbers; returns false on malformed framing.
fn decode_batch(payload: &[u8], seq_base: u64, out: &mut Vec<WalRecord>) -> bool {
    if payload.len() < 13 {
        return false;
    }
    let count = u32::from_le_bytes(payload[9..13].try_into().unwrap()) as usize;
    let mut pos = 13usize;
    let mut batch = Vec::with_capacity(count.min(1024));
    for i in 0..count {
        if pos + 9 > payload.len() {
            return false;
        }
        let Some(kind) = OpKind::from_u8(payload[pos]) else {
            return false;
        };
        let klen = u32::from_le_bytes(payload[pos + 1..pos + 5].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(payload[pos + 5..pos + 9].try_into().unwrap()) as usize;
        pos += 9;
        if pos + klen + vlen > payload.len() {
            return false;
        }
        batch.push(WalRecord {
            key: payload[pos..pos + klen].to_vec(),
            value: payload[pos + klen..pos + klen + vlen].to_vec(),
            seq: seq_base + i as u64,
            kind,
        });
        pos += klen + vlen;
    }
    if pos != payload.len() {
        return false;
    }
    out.extend(batch);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::Stats;
    use miodb_pmem::DeviceModel;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(
            8 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap()
    }

    #[test]
    fn append_replay_round_trip() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
        wal.append(b"a", b"1", 1, OpKind::Put).unwrap();
        wal.append(b"b", b"", 2, OpKind::Delete).unwrap();
        wal.append(b"c", b"333", 3, OpKind::Put).unwrap();
        let records = WriteAheadLog::replay(&p, &wal.segments()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[0],
            WalRecord {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
                seq: 1,
                kind: OpKind::Put
            }
        );
        assert_eq!(records[1].kind, OpKind::Delete);
        assert_eq!(records[2].value, b"333");
    }

    #[test]
    fn empty_log_replays_empty() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
        assert!(WriteAheadLog::replay(&p, &wal.segments())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn grows_across_segments() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 4096).unwrap();
        let value = vec![9u8; 500];
        for i in 0..100u32 {
            wal.append(
                format!("key{i:04}").as_bytes(),
                &value,
                i as u64 + 1,
                OpKind::Put,
            )
            .unwrap();
        }
        assert!(wal.segments().len() > 5);
        let records = WriteAheadLog::replay(&p, &wal.segments()).unwrap();
        assert_eq!(records.len(), 100);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.key, format!("key{i:04}").into_bytes());
        }
    }

    #[test]
    fn torn_tail_stops_replay() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
        wal.append(b"good1", b"v", 1, OpKind::Put).unwrap();
        wal.append(b"good2", b"v", 2, OpKind::Put).unwrap();
        wal.append(b"torn", b"victim", 3, OpKind::Put).unwrap();
        // Corrupt a byte inside the third record's payload.
        let segs = wal.segments();
        let state = wal.state.lock();
        let third_start = state.cursor - (RECORD_HEADER + PAYLOAD_FIXED + 4 + 6) as u64;
        drop(state);
        p.write_bytes(third_start + RECORD_HEADER as u64 + 9, &[0xFF]);
        let records = WriteAheadLog::replay(&p, &segs).unwrap();
        assert_eq!(records.len(), 2, "replay must stop at torn record");
        assert_eq!(records[1].key, b"good2");
    }

    #[test]
    fn truncation_at_every_offset_replays_whole_prefix() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
        wal.append(b"first", b"v1", 1, OpKind::Put).unwrap();
        wal.append(b"second", b"v2", 2, OpKind::Put).unwrap();
        let start = wal.state.lock().cursor;
        // The final record is a group: torn-tail recovery must drop the
        // whole group, never a suffix of it.
        let batch = vec![
            (b"g1".to_vec(), b"vv1".to_vec(), OpKind::Put),
            (b"g2".to_vec(), b"vv2".to_vec(), OpKind::Put),
        ];
        wal.append_batch(&batch, 3).unwrap();
        let end = wal.state.lock().cursor;
        let segs = wal.segments();
        let record_len = (end - start) as usize;
        let len = record_len + RECORD_HEADER; // record + terminator
        let mut saved = vec![0u8; len];
        p.read_bytes(start, &mut saved);
        for cut in 0..record_len {
            // Simulate a crash after exactly `cut` bytes of the final
            // record reached the log (fresh-segment memory reads zero).
            p.write_bytes(start + cut as u64, &vec![0u8; len - cut]);
            let records = WriteAheadLog::replay(&p, &segs)
                .unwrap_or_else(|e| panic!("replay errored at cut {cut}: {e}"));
            assert_eq!(records.len(), 2, "cut at byte {cut} of final record");
            assert_eq!(records[1].key, b"second");
            p.write_bytes(start, &saved);
        }
        // A crash at or past the record's end (mid-terminator) keeps it:
        // the record is complete, and the terminator region is zero anyway.
        p.write_bytes(start + record_len as u64, &[0u8; RECORD_HEADER]);
        assert_eq!(WriteAheadLog::replay(&p, &segs).unwrap().len(), 4);
    }

    #[test]
    fn release_frees_segments() {
        let p = pool();
        let before = p.used_bytes();
        let wal = WriteAheadLog::new(p.clone(), 4096).unwrap();
        for i in 0..50u32 {
            wal.append(&i.to_le_bytes(), &[0u8; 300], i as u64, OpKind::Put)
                .unwrap();
        }
        assert!(p.used_bytes() > before);
        wal.release();
        assert_eq!(p.used_bytes(), before);
    }

    #[test]
    fn bytes_written_tracks_appends() {
        let p = pool();
        let wal = WriteAheadLog::new(p, 64 * 1024).unwrap();
        assert_eq!(wal.bytes_written(), 0);
        wal.append(b"k", b"v", 1, OpKind::Put).unwrap();
        let one = wal.bytes_written();
        assert!(one > 0);
        wal.append(b"k", b"v", 2, OpKind::Put).unwrap();
        assert_eq!(wal.bytes_written(), 2 * one);
    }

    #[test]
    fn oversized_record_gets_dedicated_segment() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 4096).unwrap();
        let huge = vec![5u8; 100 * 1024];
        wal.append(b"big", &huge, 1, OpKind::Put).unwrap();
        let records = WriteAheadLog::replay(&p, &wal.segments()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].value, huge);
    }

    #[test]
    fn batch_round_trip_interleaved_with_singles() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
        wal.append(b"single1", b"v1", 1, OpKind::Put).unwrap();
        let batch = vec![
            (b"b1".to_vec(), b"v2".to_vec(), OpKind::Put),
            (b"b2".to_vec(), Vec::new(), OpKind::Delete),
            (b"b3".to_vec(), b"v4".to_vec(), OpKind::Put),
        ];
        wal.append_batch(&batch, 2).unwrap();
        wal.append(b"single2", b"v5", 5, OpKind::Put).unwrap();
        let (records, _) = WriteAheadLog::replay_chain(&p, wal.segments()[0]).unwrap();
        assert_eq!(records.len(), 5);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(records[1].key, b"b1");
        assert_eq!(records[2].kind, OpKind::Delete);
        assert_eq!(records[4].key, b"single2");
    }

    #[test]
    fn group_append_replays_every_writer_in_order() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
        // Three writers' ops coalesced into one group record.
        let (k1, v1) = (b"w1-key".to_vec(), b"w1-val".to_vec());
        let (k2, v2) = (b"w2-key".to_vec(), Vec::new());
        let (k3, v3) = (b"w3-key".to_vec(), vec![9u8; 300]);
        let ops = [
            GroupOp {
                key: &k1,
                value: &v1,
                kind: OpKind::Put,
            },
            GroupOp {
                key: &k2,
                value: &v2,
                kind: OpKind::Delete,
            },
            GroupOp {
                key: &k3,
                value: &v3,
                kind: OpKind::Put,
            },
        ];
        let before = wal.bytes_written();
        wal.append_group(&ops, 10).unwrap();
        // One record for the whole group: framing overhead is a single
        // header + batch prefix, not one header per op.
        let body: usize = ops.iter().map(|op| 9 + op.key.len() + op.value.len()).sum();
        assert_eq!(
            wal.bytes_written() - before,
            (RECORD_HEADER + 8 + 1 + 4 + body) as u64
        );
        let records = WriteAheadLog::replay(&p, &wal.segments()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        assert_eq!(records[1].kind, OpKind::Delete);
        assert_eq!(records[2].value, v3);
        // Empty groups are a no-op.
        wal.append_group(&[], 13).unwrap();
        assert_eq!(WriteAheadLog::replay(&p, &wal.segments()).unwrap().len(), 3);
    }

    #[test]
    fn torn_batch_replays_none_of_it() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
        wal.append(b"before", b"v", 1, OpKind::Put).unwrap();
        let batch = vec![
            (b"b1".to_vec(), vec![1u8; 100], OpKind::Put),
            (b"b2".to_vec(), vec![2u8; 100], OpKind::Put),
        ];
        wal.append_batch(&batch, 2).unwrap();
        // Corrupt one byte inside the batch payload: the whole batch must
        // vanish from replay (all-or-nothing durability).
        let seg = wal.segments()[0];
        let state = wal.state.lock();
        let batch_total = 8 + (8 + 1 + 4) + 2 * (9 + 2 + 100);
        let batch_start = state.cursor - batch_total as u64;
        drop(state);
        let mut b = [0u8; 1];
        p.read_bytes(batch_start + 30, &mut b);
        p.write_bytes(batch_start + 30, &[b[0] ^ 0xFF]);
        let (records, _) = WriteAheadLog::replay_chain(&p, seg).unwrap();
        assert_eq!(records.len(), 1, "batch must replay all-or-nothing");
        assert_eq!(records[0].key, b"before");
    }

    #[test]
    fn replay_survives_pool_snapshot() {
        let p = pool();
        let wal = WriteAheadLog::new(p.clone(), 64 * 1024).unwrap();
        wal.append(b"persisted", b"yes", 7, OpKind::Put).unwrap();
        let segs = wal.segments();
        let mut path = std::env::temp_dir();
        path.push(format!("miodb-wal-snap-{}", std::process::id()));
        p.snapshot_to_file(&path).unwrap();
        let restored = PmemPool::restore_from_file(
            &path,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        let records = WriteAheadLog::replay(&restored, &segs).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, b"persisted");
        assert_eq!(records[0].seq, 7);
        std::fs::remove_file(&path).ok();
    }
}
