//! Pmem fault-point tests: injected allocation failure, torn snapshot
//! persist, and restore-time corruption.
//!
//! Own integration binary so the process-global fault registry never races
//! the un-instrumented property tests; every test takes
//! [`fault::exclusive`].

use std::sync::Arc;

use miodb_common::fault::{self, points, FaultPolicy};
use miodb_common::{Error, Stats};
use miodb_pmem::{DeviceModel, PmemPool};

fn pool() -> Arc<PmemPool> {
    PmemPool::new(
        1 << 20,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("miodb-fault-{}-{}", std::process::id(), name));
    p
}

#[test]
fn alloc_fault_is_typed_and_leaves_allocator_intact() {
    let _g = fault::exclusive();
    let p = pool();
    fault::arm(points::PMEM_ALLOC, FaultPolicy::FailNth(2));
    let first = p.alloc(4096).unwrap();
    let err = p.alloc(4096).unwrap_err();
    assert!(
        matches!(err, Error::PoolExhausted { .. }),
        "typed error, got {err}"
    );
    fault::disarm_all();
    // The failed alloc charged nothing: the next one succeeds and the pool
    // accounts exactly two regions.
    let second = p.alloc(4096).unwrap();
    assert_eq!(p.used_bytes(), first.len + second.len);
}

#[test]
fn torn_snapshot_persist_errors_and_restore_detects_it() {
    let _g = fault::exclusive();
    let p = pool();
    let r = p.alloc(4096).unwrap();
    p.write_bytes(r.offset, &[0xAB; 4096]);
    let path = tmp("torn-persist");
    fault::arm(points::PMEM_SNAPSHOT_PERSIST, FaultPolicy::TornWrite);
    let err = p.snapshot_to_file(&path).unwrap_err();
    assert!(matches!(err, Error::Io(_)), "typed error, got {err}");
    // Crash atomicity: the torn image never reaches the destination —
    // only the `.tmp` sibling holds the partial bytes.
    assert!(
        !path.exists(),
        "torn snapshot must not land at the destination path"
    );
    // Retrying the snapshot (fault is one-shot) fully recovers.
    p.snapshot_to_file(&path).unwrap();
    let restored = PmemPool::restore_from_file(
        &path,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap();
    let mut out = [0u8; 4096];
    restored.read_bytes(r.offset, &mut out);
    assert_eq!(out, [0xAB; 4096]);
    std::fs::remove_file(&path).ok();
    remove_tmp_sibling(&path);
}

/// The `.tmp` sibling `snapshot_to_file` stages into.
fn remove_tmp_sibling(path: &std::path::Path) {
    let mut t = path.as_os_str().to_os_string();
    t.push(".tmp");
    std::fs::remove_file(std::path::PathBuf::from(t)).ok();
}

#[test]
fn torn_re_snapshot_preserves_previous_image() {
    let _g = fault::exclusive();
    let p = pool();
    let r = p.alloc(4096).unwrap();
    p.write_bytes(r.offset, &[0x11; 4096]);
    let path = tmp("torn-refresh");
    p.snapshot_to_file(&path).unwrap();
    // Mutate, then tear the refresh: the destination must still restore
    // to the previous complete image (rename never happened).
    p.write_bytes(r.offset, &[0x22; 4096]);
    fault::arm(points::PMEM_SNAPSHOT_PERSIST, FaultPolicy::TornWrite);
    p.snapshot_to_file(&path).unwrap_err();
    fault::disarm_all();
    let restored = PmemPool::restore_from_file(
        &path,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap();
    let mut out = [0u8; 4096];
    restored.read_bytes(r.offset, &mut out);
    assert_eq!(out, [0x11; 4096], "previous complete snapshot must survive");
    std::fs::remove_file(&path).ok();
    remove_tmp_sibling(&path);
}

#[test]
fn restore_fault_is_typed_corruption() {
    let _g = fault::exclusive();
    let p = pool();
    let path = tmp("restore-corrupt");
    p.snapshot_to_file(&path).unwrap();
    fault::arm(points::PMEM_RESTORE, FaultPolicy::FailOnce(1));
    let err = PmemPool::restore_from_file(
        &path,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap_err();
    assert!(err.is_corruption(), "expected corruption, got {err}");
    // A clean retry succeeds: the fault modelled a bad read, not a bad file.
    PmemPool::restore_from_file(
        &path,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap();
    std::fs::remove_file(&path).ok();
}
