//! Property tests for the pool allocator: arbitrary alloc/free sequences
//! must never hand out overlapping regions, must reclaim every freed byte
//! (perfect coalescing), and snapshots must preserve both contents and
//! allocator state.

use std::sync::Arc;

use miodb_common::Stats;
use miodb_pmem::{DeviceModel, PmemPool, PmemRegion, POOL_HEADER_BYTES};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(usize),
    Free(usize),
}

fn ops() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (64usize..32_768).prop_map(AllocOp::Alloc),
            2 => any::<usize>().prop_map(AllocOp::Free),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocations_never_overlap(ops in ops()) {
        let pool = PmemPool::new(8 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap();
        let mut live: Vec<PmemRegion> = Vec::new();
        for op in ops {
            match op {
                AllocOp::Alloc(size) => {
                    if let Ok(r) = pool.alloc(size) {
                        prop_assert!(r.offset >= POOL_HEADER_BYTES);
                        prop_assert!(r.len as usize >= size);
                        for other in &live {
                            let disjoint = r.end() <= other.offset || r.offset >= other.end();
                            prop_assert!(disjoint, "overlap: {r:?} vs {other:?}");
                        }
                        live.push(r);
                    }
                }
                AllocOp::Free(idx) => {
                    if !live.is_empty() {
                        let r = live.swap_remove(idx % live.len());
                        pool.free(r);
                    }
                }
            }
        }
        let live_bytes: u64 = live.iter().map(|r| r.len).sum();
        prop_assert_eq!(pool.used_bytes(), live_bytes);
    }

    #[test]
    fn full_free_restores_one_hole(sizes in proptest::collection::vec(64usize..16_384, 1..50)) {
        let pool = PmemPool::new(8 << 20, DeviceModel::dram(), Arc::new(Stats::new())).unwrap();
        let regions: Vec<PmemRegion> = sizes.iter().filter_map(|&s| pool.alloc(s).ok()).collect();
        // Free in a scrambled order.
        let mut regions = regions;
        let mut i = 0;
        while !regions.is_empty() {
            i = (i * 7 + 3) % regions.len().max(1);
            let r = regions.swap_remove(i % regions.len());
            pool.free(r);
        }
        prop_assert_eq!(pool.used_bytes(), 0);
        // Perfect coalescing: the entire non-header space is one hole again.
        let all = pool.alloc((8 << 20) - POOL_HEADER_BYTES as usize).unwrap();
        prop_assert_eq!(all.offset, POOL_HEADER_BYTES);
        pool.free(all);
    }

    #[test]
    fn snapshot_preserves_contents_and_allocator(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..512), 1..20)
    ) {
        let pool = PmemPool::new(2 << 20, DeviceModel::nvm_unthrottled(), Arc::new(Stats::new()))
            .unwrap();
        let mut written: Vec<(PmemRegion, Vec<u8>)> = Vec::new();
        for p in &payloads {
            let r = pool.alloc(p.len()).unwrap();
            pool.write_bytes(r.offset, p);
            written.push((r, p.clone()));
        }
        let path = std::env::temp_dir().join(format!(
            "miodb-prop-snap-{}-{}",
            std::process::id(),
            written.len()
        ));
        pool.snapshot_to_file(&path).unwrap();
        let restored =
            PmemPool::restore_from_file(&path, DeviceModel::nvm_unthrottled(), Arc::new(Stats::new()))
                .unwrap();
        for (r, p) in &written {
            let mut out = vec![0u8; p.len()];
            restored.read_bytes(r.offset, &mut out);
            prop_assert_eq!(&out, p);
        }
        prop_assert_eq!(restored.used_bytes(), pool.used_bytes());
        std::fs::remove_file(&path).ok();
    }
}
