//! Simulated byte-addressable non-volatile memory for MioDB.
//!
//! The paper's testbed has Intel Optane DC Persistent Memory Modules; this
//! crate substitutes them with an in-process **NVM pool**:
//!
//! - a single large, stable address space ([`PmemPool`]) from which arenas
//!   are allocated — mirroring a DAX-mapped persistent region, so that
//!   offsets ("pointers") stay valid across PMTables and for the pool's
//!   whole lifetime;
//! - a calibrated **device timing model** ([`DeviceModel`]) that injects
//!   read/write latency and bandwidth delays at access points, reproducing
//!   the DRAM : NVM : SSD performance ratios the paper's results depend on;
//! - byte counters shared with [`miodb_common::Stats`] so write
//!   amplification is measured at the device layer for every engine;
//! - a file [`snapshot`](PmemPool::snapshot_to_file) / restore facility used
//!   by the crash-consistency and recovery tests.
//!
//! # Examples
//!
//! ```
//! use miodb_pmem::{DeviceModel, PmemPool};
//! use miodb_common::Stats;
//! use std::sync::Arc;
//!
//! # fn main() -> miodb_common::Result<()> {
//! let pool = PmemPool::new(1 << 20, DeviceModel::nvm_unthrottled(), Arc::new(Stats::new()))?;
//! let region = pool.alloc(4096)?;
//! pool.write_bytes(region.offset, b"hello persistent world");
//! let mut buf = [0u8; 22];
//! pool.read_bytes(region.offset, &mut buf);
//! assert_eq!(&buf, b"hello persistent world");
//! pool.free(region);
//! # Ok(())
//! # }
//! ```

pub mod device;
pub mod pool;
pub mod snapshot;

pub use device::{DeviceClass, DeviceModel};
pub use pool::{PmemPool, PmemRegion, POOL_HEADER_BYTES};
