//! Pool snapshot and restore for crash-consistency experiments.
//!
//! The paper's crash-recovery story (§4.7) relies on NVM contents surviving
//! a restart. Our pool is process memory, so "surviving" is simulated by
//! taking a byte-exact snapshot at an arbitrary instant (including mid-
//! compaction, via the skip-list crate's step-limited merges), then
//! restoring it into a fresh pool in a new "process lifetime" and running
//! recovery.
//!
//! The snapshot file carries the allocator state (free list + high-water
//! mark) alongside the raw contents so the restored pool can keep
//! allocating.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use miodb_common::{fault, Error, Result, Stats};

use crate::device::DeviceModel;
use crate::pool::PmemPool;

const SNAPSHOT_MAGIC: u64 = 0x4D69_6F44_4250_6F6F; // "MioDBPoo"
const SNAPSHOT_VERSION: u32 = 1;

impl PmemPool {
    /// Writes a point-in-time snapshot of this pool to `path`,
    /// crash-atomically: the image is built at a `.tmp` sibling, synced
    /// to disk, and renamed over `path`. A crash (or injected fault) at
    /// any point leaves `path` either absent or holding the previous
    /// complete snapshot — never a torn image. This is what lets a
    /// replication leader serve `SnapshotFetch` from the same file it
    /// keeps refreshing.
    ///
    /// Only bytes up to the allocator high-water mark are written, so
    /// snapshot files stay proportional to actual usage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem failures.
    pub fn snapshot_to_file(&self, path: &Path) -> Result<()> {
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        match self.write_snapshot(&tmp) {
            Ok(()) => {
                std::fs::rename(&tmp, path)?;
                Ok(())
            }
            Err(e) => {
                // The torn/partial image stays at the `.tmp` sibling (as a
                // real crash would leave it); the destination is untouched.
                Err(e)
            }
        }
    }

    /// Serializes the pool image into `tmp` and syncs it.
    fn write_snapshot(&self, tmp: &Path) -> Result<()> {
        let (base, high_water, holes) = self.raw_parts();
        let mut w = BufWriter::new(File::create(tmp)?);
        w.write_all(&SNAPSHOT_MAGIC.to_le_bytes())?;
        w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&(self.capacity() as u64).to_le_bytes())?;
        w.write_all(&high_water.to_le_bytes())?;
        w.write_all(&(holes.len() as u64).to_le_bytes())?;
        for (off, len) in &holes {
            w.write_all(&off.to_le_bytes())?;
            w.write_all(&len.to_le_bytes())?;
        }
        // SAFETY: `base` is valid for `high_water` bytes (allocator invariant:
        // nothing above high_water was ever written). Concurrent atomic link
        // updates may tear relative to each other, which models exactly what
        // an instantaneous machine crash preserves.
        let contents = unsafe { std::slice::from_raw_parts(base, high_water as usize) };
        if fault::hit(fault::points::PMEM_SNAPSHOT_PERSIST).is_some() {
            // Injected crash mid-persist: half the contents reach the temp
            // file, the rest (and the rename publishing it) never happen.
            w.write_all(&contents[..contents.len() / 2])?;
            drop(w);
            return Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "injected torn snapshot persist",
            )));
        }
        w.write_all(contents)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(())
    }

    /// Restores a snapshot taken with [`PmemPool::snapshot_to_file`] into a
    /// fresh pool, simulating a post-crash restart.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the file is malformed and
    /// [`Error::Io`] on filesystem failures.
    pub fn restore_from_file(
        path: &Path,
        device: DeviceModel,
        stats: Arc<Stats>,
    ) -> Result<Arc<PmemPool>> {
        if fault::hit(fault::points::PMEM_RESTORE).is_some() {
            // Injected restore-time corruption, modelled as a failed
            // integrity check before any pool state is built.
            return Err(Error::Corruption(
                "injected snapshot corruption on restore".to_string(),
            ));
        }
        let mut r = BufReader::new(File::open(path)?);
        let magic = read_u64(&mut r)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(Error::Corruption("snapshot magic mismatch".to_string()));
        }
        let version = read_u32(&mut r)?;
        if version != SNAPSHOT_VERSION {
            return Err(Error::Corruption(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let capacity = read_u64(&mut r)? as usize;
        let high_water = read_u64(&mut r)?;
        if high_water > capacity as u64 {
            return Err(Error::Corruption(
                "high-water mark beyond capacity".to_string(),
            ));
        }
        let n_holes = read_u64(&mut r)? as usize;
        if n_holes > capacity / 16 {
            return Err(Error::Corruption(
                "implausible free-list length".to_string(),
            ));
        }
        let mut holes = Vec::with_capacity(n_holes);
        let mut prev_end = 0u64;
        let mut total_free = 0u64;
        for _ in 0..n_holes {
            let off = read_u64(&mut r)?;
            let len = read_u64(&mut r)?;
            // A torn header can hold arbitrary hole entries; feeding them to
            // the allocator would hand out regions outside the pool. Require
            // what a genuine free list always satisfies: in-bounds,
            // non-empty, ascending, non-overlapping.
            let end = off.checked_add(len).filter(|&e| e <= capacity as u64);
            let Some(end) = end else {
                return Err(Error::Corruption(
                    "free-list hole out of bounds".to_string(),
                ));
            };
            if len == 0 || off < crate::pool::POOL_HEADER_BYTES || off < prev_end {
                return Err(Error::Corruption("malformed free-list hole".to_string()));
            }
            prev_end = end;
            total_free += len;
            holes.push((off, len));
        }
        if total_free > capacity as u64 - crate::pool::POOL_HEADER_BYTES {
            return Err(Error::Corruption(
                "free-list total exceeds pool capacity".to_string(),
            ));
        }
        let pool = PmemPool::new(capacity, device, stats)?;
        // SAFETY: the fresh pool has at least `capacity >= high_water` bytes
        // and no other thread references it yet.
        let dst = unsafe { std::slice::from_raw_parts_mut(pool.base_ptr(), high_water as usize) };
        r.read_exact(dst)
            .map_err(|_| Error::Corruption("snapshot truncated".to_string()))?;
        pool.restore_alloc_state(high_water, holes);
        Ok(pool)
    }
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)
        .map_err(|_| Error::Corruption("snapshot truncated".to_string()))?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)
        .map_err(|_| Error::Corruption("snapshot truncated".to_string()))?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("miodb-snap-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let pool = PmemPool::new(
            1 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        let r1 = pool.alloc(4096).unwrap();
        let r2 = pool.alloc(4096).unwrap();
        pool.write_bytes(r1.offset, b"alpha");
        pool.write_bytes(r2.offset, b"beta");
        pool.free(r2);

        let path = tmp("roundtrip");
        pool.snapshot_to_file(&path).unwrap();

        let restored = PmemPool::restore_from_file(
            &path,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        let mut out = [0u8; 5];
        restored.read_bytes(r1.offset, &mut out);
        assert_eq!(&out, b"alpha");
        // Allocator state restored: used bytes reflect only r1.
        assert_eq!(restored.used_bytes(), r1.len);
        // The freed hole is reusable in the restored pool.
        let r3 = restored.alloc(4096).unwrap();
        assert_eq!(r3.offset, r2.offset);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_words_survive_snapshot() {
        let pool = PmemPool::new(
            1 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        let r = pool.alloc(64).unwrap();
        pool.atomic_u64(r.offset).store(12345, Ordering::Release);
        let path = tmp("atomic");
        pool.snapshot_to_file(&path).unwrap();
        let restored = PmemPool::restore_from_file(
            &path,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        assert_eq!(restored.atomic_u64(r.offset).load(Ordering::Acquire), 12345);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, [0u8; 64]).unwrap();
        let err = PmemPool::restore_from_file(
            &path,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap_err();
        assert!(err.is_corruption());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let pool = PmemPool::new(
            1 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap();
        let r = pool.alloc(4096).unwrap();
        pool.write_bytes(r.offset, &[9u8; 4096]);
        let path = tmp("trunc");
        pool.snapshot_to_file(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = PmemPool::restore_from_file(
            &path,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap_err();
        assert!(err.is_corruption());
        std::fs::remove_file(&path).ok();
    }
}
