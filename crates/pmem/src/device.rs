//! Device timing models for DRAM, NVM and SSD.
//!
//! Experiments in the paper depend on the relative speeds of the three
//! devices, not their absolute values:
//!
//! - DRAM random-write bandwidth ≈ 7× NVM (paper §2.1, measured with FIO);
//! - NVM latency ≈ 100× lower than SSD, bandwidth ≈ 10× higher (paper §1).
//!
//! A [`DeviceModel`] injects a delay of `latency + bytes / bandwidth` at
//! every modeled access. Delays are realized with a **spin-wait** because
//! they are frequently far below the OS sleep granularity (an NVM pointer
//! update is ~100 ns). Delays above [`SLEEP_THRESHOLD_NS`] use
//! `thread::sleep` for the bulk and spin for the remainder.
//!
//! Models can be disabled (`*_unthrottled`) for unit tests and for callers
//! that only want byte accounting.

use std::time::{Duration, Instant};

/// Which physical device class an access is charged to.
///
/// Used by [`PmemPool`](crate::PmemPool) to route byte counts into the right
/// [`Stats`](miodb_common::Stats) fields (NVM vs. SSD); DRAM accesses are
/// not counted (they are free in the write-amplification metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Volatile DRAM: no persistence, no WA accounting.
    Dram,
    /// Byte-addressable non-volatile memory (simulated Optane DCPMM).
    Nvm,
    /// Block storage (simulated NVMe/SATA SSD).
    Ssd,
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceClass::Dram => f.write_str("dram"),
            DeviceClass::Nvm => f.write_str("nvm"),
            DeviceClass::Ssd => f.write_str("ssd"),
        }
    }
}

/// Above this delay, sleep for the bulk instead of spinning.
pub const SLEEP_THRESHOLD_NS: u64 = 200_000;

/// A latency/bandwidth model for one device.
///
/// # Examples
///
/// ```
/// use miodb_pmem::DeviceModel;
///
/// let nvm = DeviceModel::nvm();
/// // A 256 B random write costs the write latency plus transfer time.
/// let d = nvm.write_delay_ns(256);
/// assert!(d > 0);
/// let free = DeviceModel::dram();
/// assert_eq!(free.write_delay_ns(4096), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Device class for accounting.
    pub class: DeviceClass,
    /// Fixed latency added to every modeled read, in nanoseconds.
    pub read_latency_ns: u64,
    /// Fixed latency added to every modeled write, in nanoseconds.
    pub write_latency_ns: u64,
    /// Sustained read bandwidth in bytes per nanosecond (GB/s).
    pub read_gbps: f64,
    /// Sustained write bandwidth in bytes per nanosecond (GB/s).
    pub write_gbps: f64,
    /// When false, no delays are injected (accounting still happens).
    pub throttled: bool,
}

impl DeviceModel {
    /// DRAM: free in the model. All CPU work on DRAM is real work, so no
    /// artificial delay is added and no WA bytes are counted.
    pub fn dram() -> DeviceModel {
        DeviceModel {
            class: DeviceClass::Dram,
            read_latency_ns: 0,
            write_latency_ns: 0,
            read_gbps: f64::INFINITY,
            write_gbps: f64::INFINITY,
            throttled: false,
        }
    }

    /// NVM with Optane-like parameters (scaled to preserve the paper's
    /// DRAM:NVM ratios): 250 ns read latency, 90 ns posted-write latency,
    /// 8 GB/s read and 3 GB/s write bandwidth.
    pub fn nvm() -> DeviceModel {
        DeviceModel {
            class: DeviceClass::Nvm,
            read_latency_ns: 250,
            write_latency_ns: 90,
            read_gbps: 8.0,
            write_gbps: 3.0,
            throttled: true,
        }
    }

    /// NVM accounting without delays (unit tests, logical checks).
    pub fn nvm_unthrottled() -> DeviceModel {
        DeviceModel {
            throttled: false,
            ..DeviceModel::nvm()
        }
    }

    /// SSD with NVMe-like parameters: ~25 µs read / 20 µs write latency,
    /// 0.8 GB/s read and 0.35 GB/s write — roughly 100× NVM latency and
    /// ~1/10 NVM bandwidth, matching the ratios cited in the paper.
    pub fn ssd() -> DeviceModel {
        DeviceModel {
            class: DeviceClass::Ssd,
            read_latency_ns: 25_000,
            write_latency_ns: 20_000,
            read_gbps: 0.8,
            write_gbps: 0.35,
            throttled: true,
        }
    }

    /// SSD accounting without delays.
    pub fn ssd_unthrottled() -> DeviceModel {
        DeviceModel {
            throttled: false,
            ..DeviceModel::ssd()
        }
    }

    /// Delay in nanoseconds for reading `bytes` from this device.
    pub fn read_delay_ns(&self, bytes: usize) -> u64 {
        if !self.throttled {
            return 0;
        }
        self.read_latency_ns + transfer_ns(bytes, self.read_gbps)
    }

    /// Delay in nanoseconds for writing `bytes` to this device.
    pub fn write_delay_ns(&self, bytes: usize) -> u64 {
        if !self.throttled {
            return 0;
        }
        self.write_latency_ns + transfer_ns(bytes, self.write_gbps)
    }

    /// Blocks the calling thread for the modeled read cost of `bytes`.
    pub fn delay_read(&self, bytes: usize) {
        busy_delay_ns(self.read_delay_ns(bytes));
    }

    /// Blocks the calling thread for the modeled write cost of `bytes`.
    pub fn delay_write(&self, bytes: usize) {
        busy_delay_ns(self.write_delay_ns(bytes));
    }

    /// Returns a copy of this model scaled by `factor` (>1 slows the device
    /// down). Used by sensitivity sweeps.
    pub fn scaled(&self, factor: f64) -> DeviceModel {
        DeviceModel {
            class: self.class,
            read_latency_ns: (self.read_latency_ns as f64 * factor) as u64,
            write_latency_ns: (self.write_latency_ns as f64 * factor) as u64,
            read_gbps: self.read_gbps / factor,
            write_gbps: self.write_gbps / factor,
            throttled: self.throttled,
        }
    }
}

fn transfer_ns(bytes: usize, gbps: f64) -> u64 {
    if gbps.is_infinite() || bytes == 0 {
        0
    } else {
        (bytes as f64 / gbps) as u64
    }
}

/// Blocks for `ns` nanoseconds: sleeps for the bulk of long delays and
/// spin-waits for short ones (sub-`SLEEP_THRESHOLD_NS` delays are far below
/// OS timer resolution).
pub fn busy_delay_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    if ns > SLEEP_THRESHOLD_NS {
        std::thread::sleep(Duration::from_nanos(ns - SLEEP_THRESHOLD_NS / 2));
    }
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_is_free() {
        let d = DeviceModel::dram();
        assert_eq!(d.read_delay_ns(1 << 20), 0);
        assert_eq!(d.write_delay_ns(1 << 20), 0);
    }

    #[test]
    fn unthrottled_injects_nothing() {
        let d = DeviceModel::nvm_unthrottled();
        assert_eq!(d.write_delay_ns(1 << 30), 0);
    }

    #[test]
    fn nvm_latency_dominates_small_writes() {
        let d = DeviceModel::nvm();
        let small = d.write_delay_ns(8);
        assert!(small >= d.write_latency_ns);
        assert!(small < d.write_latency_ns + 100);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let d = DeviceModel::nvm();
        // 64 MiB at 3 GB/s ~ 22 ms, far above latency.
        let big = d.write_delay_ns(64 << 20);
        assert!(big > 20_000_000, "{big}");
    }

    #[test]
    fn ssd_much_slower_than_nvm() {
        let nvm = DeviceModel::nvm();
        let ssd = DeviceModel::ssd();
        assert!(ssd.read_latency_ns >= 100 * nvm.read_latency_ns);
        assert!(ssd.read_delay_ns(4096) > 30 * nvm.read_delay_ns(4096));
        assert!(ssd.write_delay_ns(1 << 20) > 5 * nvm.write_delay_ns(1 << 20));
    }

    #[test]
    fn scaled_slows_down() {
        let d = DeviceModel::nvm().scaled(2.0);
        assert_eq!(d.read_latency_ns, 500);
        assert!(d.write_delay_ns(1 << 20) > DeviceModel::nvm().write_delay_ns(1 << 20));
    }

    #[test]
    fn busy_delay_roughly_accurate() {
        let t = Instant::now();
        busy_delay_ns(200_000);
        let e = t.elapsed().as_nanos() as u64;
        assert!(e >= 200_000, "waited only {e} ns");
        // Generous upper bound: scheduler noise under CI.
        assert!(e < 60_000_000, "waited {e} ns");
    }

    #[test]
    fn delay_zero_returns_immediately() {
        let t = Instant::now();
        busy_delay_ns(0);
        assert!(t.elapsed().as_micros() < 1000);
    }

    #[test]
    fn display_class() {
        assert_eq!(DeviceClass::Nvm.to_string(), "nvm");
        assert_eq!(DeviceClass::Ssd.to_string(), "ssd");
        assert_eq!(DeviceClass::Dram.to_string(), "dram");
    }
}
