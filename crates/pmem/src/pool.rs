//! The NVM pool: a single stable address space with arena allocation.
//!
//! All persistent structures (PMTables, the huge data repository, the WAL,
//! the manifest) live inside one pool so that offsets — the reproduction's
//! equivalent of the paper's absolute pointers at a fixed DAX mapping —
//! remain valid across zero-copy compactions that link nodes of different
//! arenas into one skip list.
//!
//! Offset `0` is the universal NIL "pointer"; the first
//! [`POOL_HEADER_BYTES`] of the pool are reserved for the manifest so no
//! allocation can ever sit at offset 0.
//!
//! # Concurrency discipline
//!
//! The pool itself only synchronizes allocation (a mutex around the free
//! list). Data-race freedom for the contents is the responsibility of the
//! storage structures and follows the paper's protocol:
//!
//! - node payloads are written **before** the node is published and never
//!   mutated afterwards;
//! - link words are 8-aligned and accessed **only** through
//!   [`PmemPool::atomic_u64`] (release stores by the single compactor of a
//!   level, acquire loads by readers).

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use miodb_common::{fault, Error, Result, Stats};
use parking_lot::Mutex;

use crate::device::{DeviceClass, DeviceModel};

/// Bytes reserved at the front of every pool for the manifest header.
pub const POOL_HEADER_BYTES: u64 = 64 * 1024;

/// Allocation granularity and alignment inside the pool.
pub const POOL_ALIGN: u64 = 64;

/// A contiguous allocation inside a [`PmemPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmemRegion {
    /// Start offset within the pool (always `>= POOL_HEADER_BYTES`,
    /// 64-aligned).
    pub offset: u64,
    /// Length in bytes (64-aligned).
    pub len: u64,
}

impl PmemRegion {
    /// Exclusive end offset of the region.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

#[derive(Debug)]
struct FreeList {
    /// Sorted, coalesced list of (offset, len) holes.
    holes: Vec<(u64, u64)>,
    /// Highest offset ever handed out (exclusive) — snapshot bound.
    high_water: u64,
}

impl FreeList {
    fn new(capacity: u64) -> FreeList {
        FreeList {
            holes: vec![(POOL_HEADER_BYTES, capacity - POOL_HEADER_BYTES)],
            high_water: POOL_HEADER_BYTES,
        }
    }

    fn alloc(&mut self, len: u64) -> Option<u64> {
        for i in 0..self.holes.len() {
            let (off, hlen) = self.holes[i];
            if hlen >= len {
                if hlen == len {
                    self.holes.remove(i);
                } else {
                    self.holes[i] = (off + len, hlen - len);
                }
                self.high_water = self.high_water.max(off + len);
                return Some(off);
            }
        }
        None
    }

    fn free(&mut self, off: u64, len: u64) {
        let idx = self.holes.partition_point(|&(o, _)| o < off);
        self.holes.insert(idx, (off, len));
        // Coalesce with successor then predecessor.
        if idx + 1 < self.holes.len()
            && self.holes[idx].0 + self.holes[idx].1 == self.holes[idx + 1].0
        {
            self.holes[idx].1 += self.holes[idx + 1].1;
            self.holes.remove(idx + 1);
        }
        if idx > 0 && self.holes[idx - 1].0 + self.holes[idx - 1].1 == self.holes[idx].0 {
            self.holes[idx - 1].1 += self.holes[idx].1;
            self.holes.remove(idx);
        }
    }

    fn largest_hole(&self) -> u64 {
        self.holes.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }
}

/// A fixed-capacity, byte-addressable memory pool with arena allocation,
/// modeled device timing and WA accounting.
///
/// See the [crate docs](crate) for an example.
pub struct PmemPool {
    base: NonNull<u8>,
    capacity: usize,
    device: DeviceModel,
    stats: Arc<Stats>,
    free_list: Mutex<FreeList>,
    used: AtomicU64,
    peak: AtomicU64,
}

// SAFETY: the pool hands out raw memory; synchronization of contents is the
// documented responsibility of callers (atomics for link words, publish-
// then-read for payloads). The allocator state is mutex-protected.
unsafe impl Send for PmemPool {}
unsafe impl Sync for PmemPool {}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("capacity", &self.capacity)
            .field("used", &self.used_bytes())
            .field("peak", &self.peak_bytes())
            .field("device", &self.device.class)
            .finish()
    }
}

impl Drop for PmemPool {
    fn drop(&mut self) {
        // SAFETY: base was allocated in `new` with the same layout.
        unsafe {
            dealloc(
                self.base.as_ptr(),
                Layout::from_size_align_unchecked(self.capacity, POOL_ALIGN as usize),
            );
        }
    }
}

impl PmemPool {
    /// Creates a pool of `capacity` bytes (zero-initialized) charged to
    /// `device`, with byte counters routed into `stats`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if `capacity` is smaller than the
    /// reserved header, and [`Error::PoolExhausted`] if the host allocation
    /// fails.
    pub fn new(capacity: usize, device: DeviceModel, stats: Arc<Stats>) -> Result<Arc<PmemPool>> {
        if (capacity as u64) < POOL_HEADER_BYTES * 2 {
            return Err(Error::InvalidArgument(format!(
                "pool capacity {capacity} below minimum {}",
                POOL_HEADER_BYTES * 2
            )));
        }
        let capacity = (capacity as u64 & !(POOL_ALIGN - 1)) as usize;
        let layout = Layout::from_size_align(capacity, POOL_ALIGN as usize)
            .map_err(|e| Error::InvalidArgument(e.to_string()))?;
        // SAFETY: layout has non-zero size (checked above).
        let raw = unsafe { alloc_zeroed(layout) };
        let base = NonNull::new(raw).ok_or(Error::PoolExhausted {
            requested: capacity,
            available: 0,
        })?;
        Ok(Arc::new(PmemPool {
            base,
            capacity,
            device,
            stats,
            free_list: Mutex::new(FreeList::new(capacity as u64)),
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }))
    }

    /// Total pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The device model this pool is charged to.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The statistics block shared with this pool.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// Allocates `size` bytes (rounded up to 64) from the pool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PoolExhausted`] when no hole is large enough.
    pub fn alloc(&self, size: usize) -> Result<PmemRegion> {
        if fault::hit(fault::points::PMEM_ALLOC).is_some() {
            // Injected NVM exhaustion: fail before touching the free list so
            // the allocator state is untouched and the caller sees the same
            // typed error a genuinely full pool would produce.
            return Err(Error::PoolExhausted {
                requested: size,
                available: 0,
            });
        }
        let len = ((size as u64).max(POOL_ALIGN) + POOL_ALIGN - 1) & !(POOL_ALIGN - 1);
        let mut fl = self.free_list.lock();
        match fl.alloc(len) {
            Some(offset) => {
                let used = self.used.fetch_add(len, Ordering::Relaxed) + len;
                self.peak.fetch_max(used, Ordering::Relaxed);
                Ok(PmemRegion { offset, len })
            }
            None => Err(Error::PoolExhausted {
                requested: size,
                available: fl.largest_hole() as usize,
            }),
        }
    }

    /// Reports whether `[off, off+len)` lies entirely in currently
    /// allocated space: at or above the header, below the high-water mark,
    /// and not intersecting any free hole.
    ///
    /// Recovery uses this to reject manifests that reference memory the
    /// allocator has since reclaimed (stale or corrupted metadata).
    pub fn region_is_live(&self, off: u64, len: u64) -> bool {
        let fl = self.free_list.lock();
        let Some(end) = off.checked_add(len) else {
            return false;
        };
        if off < POOL_HEADER_BYTES || end > fl.high_water {
            return false;
        }
        // Holes are sorted and coalesced; overlap iff some hole starts
        // before `end` and ends after `off`.
        let idx = fl.holes.partition_point(|&(o, _)| o < end);
        fl.holes[..idx]
            .iter()
            .all(|&(hoff, hlen)| hoff + hlen <= off)
    }

    /// Returns a region to the pool.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the region is outside the pool. Freeing a
    /// region twice corrupts the allocator — regions are owned values, do
    /// not copy-and-free them.
    pub fn free(&self, region: PmemRegion) {
        debug_assert!(region.offset >= POOL_HEADER_BYTES);
        debug_assert!(region.end() <= self.capacity as u64);
        self.free_list.lock().free(region.offset, region.len);
        self.used.fetch_sub(region.len, Ordering::Relaxed);
    }

    #[inline]
    fn check_range(&self, off: u64, len: usize) {
        debug_assert!(
            off as usize + len <= self.capacity,
            "pool access out of range: off={off} len={len} cap={}",
            self.capacity
        );
    }

    /// Raw pointer to `off`. Internal building block.
    #[inline]
    pub(crate) fn ptr(&self, off: u64) -> *mut u8 {
        debug_assert!((off as usize) < self.capacity);
        // SAFETY: offset checked against capacity (debug); base is valid for
        // the pool's lifetime.
        unsafe { self.base.as_ptr().add(off as usize) }
    }

    /// Charges (and delays for) a modeled device read of `bytes` without
    /// moving data — used for traversal costs where data is accessed through
    /// [`PmemPool::slice`].
    #[inline]
    pub fn charge_read(&self, bytes: usize) {
        match self.device.class {
            DeviceClass::Nvm => self
                .stats
                .nvm_bytes_read
                .fetch_add(bytes as u64, Ordering::Relaxed),
            DeviceClass::Ssd => self
                .stats
                .ssd_bytes_read
                .fetch_add(bytes as u64, Ordering::Relaxed),
            DeviceClass::Dram => 0,
        };
        self.device.delay_read(bytes);
    }

    /// Charges `count` dependent random reads of `bytes_each` in one call:
    /// the modeled time is identical to `count` separate [`charge_read`]s
    /// (each pays the device latency — dependent pointer chases cannot
    /// pipeline), but the spin-wait overhead is paid once. Used by
    /// skip-list descents.
    ///
    /// [`charge_read`]: PmemPool::charge_read
    #[inline]
    pub fn charge_read_batch(&self, count: u64, bytes_each: usize) {
        if count == 0 {
            return;
        }
        let total = count * bytes_each as u64;
        match self.device.class {
            DeviceClass::Nvm => self
                .stats
                .nvm_bytes_read
                .fetch_add(total, Ordering::Relaxed),
            DeviceClass::Ssd => self
                .stats
                .ssd_bytes_read
                .fetch_add(total, Ordering::Relaxed),
            DeviceClass::Dram => 0,
        };
        let ns = count * self.device.read_delay_ns(bytes_each);
        crate::device::busy_delay_ns(ns);
    }

    /// Charges (and delays for) a modeled device write of `bytes` without
    /// moving data — used for link-word updates done through atomics.
    #[inline]
    pub fn charge_write(&self, bytes: usize) {
        match self.device.class {
            DeviceClass::Nvm => self
                .stats
                .nvm_bytes_written
                .fetch_add(bytes as u64, Ordering::Relaxed),
            DeviceClass::Ssd => self
                .stats
                .ssd_bytes_written
                .fetch_add(bytes as u64, Ordering::Relaxed),
            DeviceClass::Dram => 0,
        };
        self.device.delay_write(bytes);
    }

    /// Writes `data` at `off`, charging the device model.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the range exceeds the pool.
    pub fn write_bytes(&self, off: u64, data: &[u8]) {
        self.check_range(off, data.len());
        // SAFETY: range checked; caller guarantees no concurrent access to
        // this unpublished region (see crate concurrency discipline).
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr(off), data.len());
        }
        self.charge_write(data.len());
    }

    /// Reads `out.len()` bytes at `off` into `out`, charging the device.
    pub fn read_bytes(&self, off: u64, out: &mut [u8]) {
        self.check_range(off, out.len());
        // SAFETY: range checked.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr(off), out.as_mut_ptr(), out.len());
        }
        self.charge_read(out.len());
    }

    /// Borrows `len` bytes at `off` without charging the device (callers
    /// account traversal costs separately with [`PmemPool::charge_read`]).
    ///
    /// # Safety
    ///
    /// The range must have been fully initialized (written before the
    /// enclosing node was published) and must not be concurrently written
    /// through non-atomic operations. Structures in this workspace uphold
    /// this by never mutating payload bytes after publication.
    #[inline]
    pub unsafe fn slice(&self, off: u64, len: usize) -> &[u8] {
        self.check_range(off, len);
        std::slice::from_raw_parts(self.ptr(off), len)
    }

    /// Returns the 8-byte word at `off` as an atomic.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `off` is not 8-aligned or out of range.
    #[inline]
    pub fn atomic_u64(&self, off: u64) -> &AtomicU64 {
        debug_assert_eq!(off & 7, 0, "atomic access must be 8-aligned");
        self.check_range(off, 8);
        // SAFETY: aligned, in range, and all concurrent access to link words
        // goes through this same atomic view.
        unsafe { &*(self.ptr(off) as *const AtomicU64) }
    }

    /// Plain (non-atomic) u64 read for unpublished or quiescent data.
    #[inline]
    pub fn read_u64(&self, off: u64) -> u64 {
        self.check_range(off, 8);
        // SAFETY: range checked; unaligned-safe read.
        unsafe { std::ptr::read_unaligned(self.ptr(off) as *const u64) }
    }

    /// Plain (non-atomic) u64 write for unpublished data. Does not charge
    /// the device; use [`PmemPool::charge_write`] for modeled costs.
    #[inline]
    pub fn write_u64(&self, off: u64, v: u64) {
        self.check_range(off, 8);
        // SAFETY: range checked; unaligned-safe write.
        unsafe { std::ptr::write_unaligned(self.ptr(off) as *mut u64, v) }
    }

    /// Copies `len` bytes from `src_pool[src_off..]` into `self[dst_off..]`
    /// as one bulk transfer (the paper's *one-piece flush* memcpy), charging
    /// a read on the source device and a write on this device.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either range is out of bounds.
    pub fn copy_from_pool(&self, dst_off: u64, src_pool: &PmemPool, src_off: u64, len: usize) {
        self.check_range(dst_off, len);
        src_pool.check_range(src_off, len);
        // SAFETY: both ranges checked; the destination arena is unpublished
        // and the source (an immutable MemTable) is frozen.
        unsafe {
            std::ptr::copy_nonoverlapping(src_pool.ptr(src_off), self.ptr(dst_off), len);
        }
        src_pool.charge_read(len);
        self.charge_write(len);
    }

    /// Snapshot of the raw pool contents up to the allocator high-water
    /// mark plus the header (crash-consistency testing; see
    /// [`snapshot`](crate::snapshot)).
    pub(crate) fn raw_parts(&self) -> (*const u8, u64, Vec<(u64, u64)>) {
        let fl = self.free_list.lock();
        (self.base.as_ptr(), fl.high_water, fl.holes.clone())
    }

    /// Rebuilds allocator state after a restore.
    pub(crate) fn restore_alloc_state(&self, high_water: u64, holes: Vec<(u64, u64)>) {
        let mut fl = self.free_list.lock();
        let free: u64 = holes.iter().map(|&(_, l)| l).sum();
        let used = self.capacity as u64 - POOL_HEADER_BYTES - free;
        fl.holes = holes;
        fl.high_water = high_water;
        self.used.store(used, Ordering::Relaxed);
        self.peak.fetch_max(used, Ordering::Relaxed);
    }

    /// Raw mutable pointer for restore.
    pub(crate) fn base_ptr(&self) -> *mut u8 {
        self.base.as_ptr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> Arc<PmemPool> {
        PmemPool::new(cap, DeviceModel::nvm_unthrottled(), Arc::new(Stats::new())).unwrap()
    }

    #[test]
    fn alloc_respects_header_reservation() {
        let p = pool(1 << 20);
        let r = p.alloc(100).unwrap();
        assert!(r.offset >= POOL_HEADER_BYTES);
        assert_eq!(r.offset % POOL_ALIGN, 0);
        assert_eq!(r.len % POOL_ALIGN, 0);
        assert!(r.len >= 100);
    }

    #[test]
    fn alloc_rounds_up() {
        let p = pool(1 << 20);
        let r = p.alloc(1).unwrap();
        assert_eq!(r.len, POOL_ALIGN);
    }

    #[test]
    fn exhaustion_reports_available() {
        let p = pool(256 * 1024);
        let err = p.alloc(10 << 20).unwrap_err();
        match err {
            Error::PoolExhausted {
                requested,
                available,
            } => {
                assert_eq!(requested, 10 << 20);
                assert!(available > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn free_coalesces() {
        let p = pool(1 << 20);
        let a = p.alloc(1000).unwrap();
        let b = p.alloc(1000).unwrap();
        let c = p.alloc(1000).unwrap();
        let total = a.len + b.len + c.len;
        p.free(b);
        p.free(a);
        p.free(c);
        // After freeing everything the next alloc of the combined size must
        // fit exactly where the three regions were.
        let big = p.alloc(total as usize).unwrap();
        assert_eq!(big.offset, a.offset);
    }

    #[test]
    fn used_and_peak_track() {
        let p = pool(1 << 20);
        assert_eq!(p.used_bytes(), 0);
        let a = p.alloc(4096).unwrap();
        assert_eq!(p.used_bytes(), a.len);
        assert_eq!(p.peak_bytes(), a.len);
        p.free(a);
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.peak_bytes(), a.len);
    }

    #[test]
    fn write_read_round_trip() {
        let p = pool(1 << 20);
        let r = p.alloc(64).unwrap();
        p.write_bytes(r.offset, b"0123456789");
        let mut out = [0u8; 10];
        p.read_bytes(r.offset, &mut out);
        assert_eq!(&out, b"0123456789");
    }

    #[test]
    fn write_accounting_goes_to_nvm() {
        let stats = Arc::new(Stats::new());
        let p = PmemPool::new(1 << 20, DeviceModel::nvm_unthrottled(), stats.clone()).unwrap();
        let r = p.alloc(64).unwrap();
        p.write_bytes(r.offset, &[7u8; 64]);
        assert_eq!(stats.nvm_bytes_written.load(Ordering::Relaxed), 64);
        assert_eq!(stats.ssd_bytes_written.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn ssd_accounting_goes_to_ssd() {
        let stats = Arc::new(Stats::new());
        let p = PmemPool::new(1 << 20, DeviceModel::ssd_unthrottled(), stats.clone()).unwrap();
        let r = p.alloc(64).unwrap();
        p.write_bytes(r.offset, &[7u8; 64]);
        assert_eq!(stats.ssd_bytes_written.load(Ordering::Relaxed), 64);
        assert_eq!(stats.nvm_bytes_written.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn dram_is_not_accounted() {
        let stats = Arc::new(Stats::new());
        let p = PmemPool::new(1 << 20, DeviceModel::dram(), stats.clone()).unwrap();
        let r = p.alloc(64).unwrap();
        p.write_bytes(r.offset, &[1u8; 64]);
        assert_eq!(stats.nvm_bytes_written.load(Ordering::Relaxed), 0);
        assert_eq!(stats.ssd_bytes_written.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn atomic_round_trip() {
        let p = pool(1 << 20);
        let r = p.alloc(64).unwrap();
        p.atomic_u64(r.offset).store(0xDEAD_BEEF, Ordering::Release);
        assert_eq!(p.atomic_u64(r.offset).load(Ordering::Acquire), 0xDEAD_BEEF);
    }

    #[test]
    fn copy_between_pools_charges_both() {
        let dram_stats = Arc::new(Stats::new());
        let nvm_stats = Arc::new(Stats::new());
        let dram = PmemPool::new(1 << 20, DeviceModel::dram(), dram_stats).unwrap();
        let nvm =
            PmemPool::new(1 << 20, DeviceModel::nvm_unthrottled(), nvm_stats.clone()).unwrap();
        let s = dram.alloc(4096).unwrap();
        let d = nvm.alloc(4096).unwrap();
        dram.write_bytes(s.offset, &[42u8; 4096]);
        nvm.copy_from_pool(d.offset, &dram, s.offset, 4096);
        let mut out = [0u8; 16];
        nvm.read_bytes(d.offset, &mut out);
        assert_eq!(out, [42u8; 16]);
        assert_eq!(nvm_stats.nvm_bytes_written.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn capacity_below_minimum_rejected() {
        let err = PmemPool::new(100, DeviceModel::dram(), Arc::new(Stats::new())).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
    }

    #[test]
    fn pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PmemPool>();
    }

    #[test]
    fn many_alloc_free_cycles_no_fragmentation_leak() {
        let p = pool(1 << 20);
        for round in 0..50 {
            let regions: Vec<_> = (0..10).map(|i| p.alloc(128 * (i + 1)).unwrap()).collect();
            for r in regions {
                p.free(r);
            }
            assert_eq!(p.used_bytes(), 0, "leak detected in round {round}");
        }
        // Whole space still allocatable in one piece.
        let all = p.alloc((1 << 20) - POOL_HEADER_BYTES as usize).unwrap();
        p.free(all);
    }
}
