//! Torn-write sweep over the manifest commit path: a crash can leave any
//! single byte of a header slot or payload region corrupted, and
//! [`Manifest::load`] / [`MioDb::recover`] must come back with either a
//! clean (possibly older) state or a typed error — never a panic.
//!
//! The sweep is exhaustive: every byte offset of both 64-byte header slots
//! and of both referenced payload regions is flipped in turn.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use miodb_common::{KvEngine, Stats};
use miodb_core::manifest::{Manifest, ManifestState};
use miodb_core::{MioDb, MioOptions};
use miodb_pmem::{DeviceModel, PmemPool};

const SLOT_BYTES: u64 = 64;

fn pool() -> Arc<PmemPool> {
    PmemPool::new(
        8 << 20,
        DeviceModel::nvm_unthrottled(),
        Arc::new(Stats::new()),
    )
    .unwrap()
}

/// A state with enough structure to exercise every decoder branch.
fn sample_state(seq: u64) -> ManifestState {
    use miodb_core::manifest::{LevelState, RepoState, TableState};
    use miodb_pmem::PmemRegion;
    ManifestState {
        seq,
        active_wal: vec![PmemRegion {
            offset: 65536,
            len: 4096,
        }],
        imm_wal: Some(vec![PmemRegion {
            offset: 131072,
            len: 4096,
        }]),
        levels: vec![
            LevelState {
                mark: Some(PmemRegion {
                    offset: 70000,
                    len: 64,
                }),
                merging: None,
                lazy_draining: None,
                tables: vec![TableState {
                    head: 80000,
                    len: 10,
                    data_bytes: 1000,
                    newest_seq: seq,
                    arenas: vec![PmemRegion {
                        offset: 80000,
                        len: 8192,
                    }],
                }],
            },
            LevelState::default(),
        ],
        repo: Some(RepoState {
            head: 90000,
            chunk_size: 65536,
            cursor: 90100,
            end: 155536,
            len: 5,
            data_bytes: 500,
            chunks: vec![PmemRegion {
                offset: 90000,
                len: 65536,
            }],
        }),
    }
}

/// Flips `byte` at pool offset `off`, runs `Manifest::load`, restores the
/// byte, and reports (no_panic, load_result_seq).
fn load_with_flipped_byte(p: &Arc<PmemPool>, off: u64) -> (bool, Option<Option<u64>>) {
    let mut orig = [0u8; 1];
    p.read_bytes(off, &mut orig);
    p.write_bytes(off, &[orig[0] ^ 0xFF]);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        Manifest::load(Arc::clone(p)).map(|(_, s)| s.map(|s| s.seq))
    }));
    p.write_bytes(off, &orig);
    match outcome {
        Ok(Ok(seq)) => (true, Some(seq)),
        Ok(Err(_)) => (true, None),
        Err(_) => (false, None),
    }
}

#[test]
fn slot_header_corruption_sweep_never_panics() {
    let p = pool();
    let m = Manifest::create(Arc::clone(&p));
    m.store(&sample_state(1)).unwrap();
    m.store(&sample_state(2)).unwrap();
    drop(m);
    // Flip every byte of both 64-byte header slots. One slot is always
    // intact, so load must not only avoid panicking, it must still return
    // *a* committed state (version 1 or 2) or a typed error — never None.
    for off in 0..2 * SLOT_BYTES {
        let (no_panic, result) = load_with_flipped_byte(&p, off);
        assert!(
            no_panic,
            "Manifest::load panicked with slot byte {off} flipped"
        );
        if let Some(seq) = result {
            assert!(
                matches!(seq, Some(1) | Some(2)),
                "slot byte {off} flipped: load returned unexpected state {seq:?}"
            );
        }
    }
}

#[test]
fn payload_corruption_sweep_falls_back_to_older_state() {
    let p = pool();
    let m = Manifest::create(Arc::clone(&p));
    m.store(&sample_state(1)).unwrap();
    m.store(&sample_state(2)).unwrap();
    drop(m);
    // Locate both payload regions from the (intact) header slots.
    for slot_idx in 0..2u64 {
        let mut slot = [0u8; SLOT_BYTES as usize];
        p.read_bytes(slot_idx * SLOT_BYTES, &mut slot);
        let version = u64::from_le_bytes(slot[0..8].try_into().unwrap());
        let off = u64::from_le_bytes(slot[8..16].try_into().unwrap());
        let payload_len = u64::from_le_bytes(slot[24..32].try_into().unwrap());
        assert!(version == 1 || version == 2);
        // Corrupting one payload byte must flip that slot's CRC check and
        // make load fall back to the other slot's state.
        let other = if version == 1 { 2 } else { 1 };
        for b in 0..payload_len {
            let (no_panic, result) = load_with_flipped_byte(&p, off + b);
            assert!(
                no_panic,
                "Manifest::load panicked with payload byte {b} of v{version} flipped"
            );
            assert_eq!(
                result,
                Some(Some(other)),
                "payload byte {b} of v{version} flipped: expected fallback to v{other}"
            );
        }
    }
}

#[test]
fn both_slots_corrupted_is_a_clean_miss_or_typed_error() {
    let p = pool();
    let m = Manifest::create(Arc::clone(&p));
    m.store(&sample_state(1)).unwrap();
    m.store(&sample_state(2)).unwrap();
    drop(m);
    // Zero the CRC of both slots: with no valid candidate left, load must
    // report "no manifest" (fresh pool) or a typed error, not garbage.
    for slot_idx in 0..2u64 {
        p.write_bytes(slot_idx * SLOT_BYTES + 32, &[0xAA; 4]);
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| Manifest::load(Arc::clone(&p))));
    match outcome {
        Ok(Ok((_, state))) => assert!(state.is_none(), "loaded garbage state"),
        Ok(Err(_)) => {}
        Err(_) => panic!("Manifest::load panicked with both slots corrupted"),
    }
}

/// Full-engine variant: corrupt the manifest region inside a real snapshot
/// file, then drive `restore_from_file` + `MioDb::recover`. The engine must
/// open (older manifest or WAL replay) or fail with a typed error.
#[test]
fn engine_recovery_survives_manifest_corruption_in_snapshot() {
    let opts = MioOptions::small_for_tests();
    let path = std::env::temp_dir().join(format!("miodb-torn-manifest-{}", std::process::id()));
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..400u32 {
            db.put(format!("key{i:05}").as_bytes(), &[5u8; 128])
                .unwrap();
        }
        db.wait_idle().unwrap();
        db.snapshot(&path).unwrap();
        db.close().unwrap();
    }
    let original = std::fs::read(&path).unwrap();
    // Snapshot layout: magic(8) version(4) capacity(8) high_water(8)
    // n_holes(8) holes(16 each), then raw pool contents — whose first
    // 128 bytes are the two manifest slots.
    let n_holes = u64::from_le_bytes(original[28..36].try_into().unwrap()) as usize;
    let contents_base = 36 + 16 * n_holes;
    // Sweep the whole file header plus the manifest slot region.
    let sweep_end = (contents_base + 2 * SLOT_BYTES as usize).min(original.len());
    for off in 0..sweep_end {
        let mut torn = original.clone();
        torn[off] ^= 0xFF;
        std::fs::write(&path, &torn).unwrap();
        let opts = opts.clone();
        let path = path.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new()))?;
            let db = MioDb::recover(pool, opts)?;
            // If the engine opened, it must still serve reads and writes.
            db.get(b"key00000")?;
            db.put(b"probe", b"ok")?;
            db.close()
        }));
        assert!(
            outcome.is_ok(),
            "recovery panicked with snapshot byte {off} flipped"
        );
    }
    std::fs::remove_file(&path).ok();
}
