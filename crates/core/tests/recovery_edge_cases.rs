//! Recovery edge cases beyond the happy paths in the root test suite.

use std::sync::Arc;

use miodb_common::{KvEngine, Stats};
use miodb_core::{MioDb, MioOptions, WriteBatch};
use miodb_pmem::{DeviceModel, PmemPool};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("miodb-edge-{}-{name}", std::process::id()))
}

fn recover(path: &std::path::Path, opts: &MioOptions) -> MioDb {
    let pool = PmemPool::restore_from_file(path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    MioDb::recover(pool, opts.clone()).unwrap()
}

#[test]
fn recover_empty_database() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("empty");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        db.snapshot(&path).unwrap();
    }
    let db = recover(&path, &opts);
    assert!(db.get(b"anything").unwrap().is_none());
    db.put(b"fresh", b"start").unwrap();
    assert_eq!(db.get(b"fresh").unwrap().unwrap(), b"start");
    std::fs::remove_file(&path).ok();
}

#[test]
fn recover_single_unflushed_key() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("onekey");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        db.put(b"solo", b"value").unwrap();
        db.snapshot(&path).unwrap();
    }
    let db = recover(&path, &opts);
    assert_eq!(db.get(b"solo").unwrap().unwrap(), b"value");
    std::fs::remove_file(&path).ok();
}

#[test]
fn sequence_numbers_continue_after_recovery() {
    // An overwrite written after recovery must shadow the pre-crash value
    // even through later compactions (i.e. its sequence number must be
    // strictly larger).
    let opts = MioOptions::small_for_tests();
    let path = tmp("seq");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for _ in 0..50 {
            db.put(b"clash", b"pre-crash").unwrap();
        }
        for i in 0..500u32 {
            db.put(format!("fill{i:04}").as_bytes(), &[0u8; 200])
                .unwrap();
        }
        db.snapshot(&path).unwrap();
    }
    let db = recover(&path, &opts);
    db.put(b"clash", b"post-crash").unwrap();
    for i in 0..2_000u32 {
        db.put(format!("more{i:05}").as_bytes(), &[1u8; 200])
            .unwrap();
    }
    db.wait_idle().unwrap();
    assert_eq!(db.get(b"clash").unwrap().unwrap(), b"post-crash");
    std::fs::remove_file(&path).ok();
}

#[test]
fn oversized_memtable_entry_survives_recovery() {
    let opts = MioOptions::small_for_tests(); // 64 KiB memtables
    let path = tmp("jumbo");
    let jumbo = vec![0xEEu8; 200 * 1024];
    {
        let db = MioDb::open(opts.clone()).unwrap();
        db.put(b"jumbo", &jumbo).unwrap();
        db.put(b"small", b"s").unwrap();
        db.snapshot(&path).unwrap();
    }
    let db = recover(&path, &opts);
    assert_eq!(db.get(b"jumbo").unwrap().unwrap(), jumbo);
    assert_eq!(db.get(b"small").unwrap().unwrap(), b"s");
    std::fs::remove_file(&path).ok();
}

#[test]
fn batches_and_singles_interleaved_across_crash() {
    let opts = MioOptions::small_for_tests();
    let path = tmp("mixed");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        db.put(b"a", b"1").unwrap();
        let mut b = WriteBatch::new();
        b.put(b"b", b"2");
        b.put(b"a", b"overwritten");
        db.write_batch(b).unwrap();
        db.delete(b"b").unwrap();
        db.snapshot(&path).unwrap();
    }
    let db = recover(&path, &opts);
    assert_eq!(db.get(b"a").unwrap().unwrap(), b"overwritten");
    assert!(db.get(b"b").unwrap().is_none());
    std::fs::remove_file(&path).ok();
}

#[test]
fn restore_into_unthrottled_then_throttled_device() {
    // Device models are runtime configuration, not persistent state: the
    // same snapshot can be reopened under a different timing model.
    let mut opts = MioOptions::small_for_tests();
    let path = tmp("device");
    {
        let db = MioDb::open(opts.clone()).unwrap();
        for i in 0..300u32 {
            db.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.snapshot(&path).unwrap();
    }
    opts.nvm_device = DeviceModel::nvm(); // throttled now
    let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new())).unwrap();
    let db = MioDb::recover(pool, opts).unwrap();
    for i in (0..300u32).step_by(37) {
        assert_eq!(
            db.get(format!("k{i:04}").as_bytes()).unwrap().unwrap(),
            b"v"
        );
    }
    std::fs::remove_file(&path).ok();
}
