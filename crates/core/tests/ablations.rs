//! Correctness of the ablation configurations: disabling bloom filters or
//! parallel compaction must never change results, only costs.

use miodb_common::KvEngine;
use miodb_core::{MioDb, MioOptions};

fn verify_workload(db: &MioDb) {
    let value = vec![9u8; 300];
    for i in 0..3_000u32 {
        db.put(format!("key{i:05}").as_bytes(), &value).unwrap();
    }
    for i in (0..3_000u32).step_by(3) {
        db.delete(format!("key{i:05}").as_bytes()).unwrap();
    }
    db.wait_idle().unwrap();
    for i in 0..3_000u32 {
        let got = db.get(format!("key{i:05}").as_bytes()).unwrap();
        if i % 3 == 0 {
            assert!(got.is_none(), "key{i:05} should be deleted");
        } else {
            assert_eq!(got.unwrap(), value, "key{i:05}");
        }
    }
    let scan = db.scan(b"key00010", 20).unwrap();
    assert!(!scan.is_empty());
    for w in scan.windows(2) {
        assert!(w[0].key < w[1].key);
    }
}

#[test]
fn bloom_disabled_is_correct() {
    let db = MioDb::open(MioOptions {
        bloom_enabled: false,
        ..MioOptions::small_for_tests()
    })
    .unwrap();
    verify_workload(&db);
    // Without filters, no skip statistics accumulate.
    assert_eq!(db.report().stats.bloom_skips, 0);
}

#[test]
fn serial_compaction_is_correct() {
    let db = MioDb::open(MioOptions {
        parallel_compaction: false,
        elastic_levels: 3, // shallow buffer so the workload reaches lazy-copy
        ..MioOptions::small_for_tests()
    })
    .unwrap();
    verify_workload(&db);
    let report = db.report();
    assert!(
        report.stats.zero_copy_compactions > 0,
        "serial compactor must run merges"
    );
    assert!(report.stats.copy_compactions > 0, "lazy copy still drains");
}

#[test]
fn serial_and_no_bloom_together() {
    let db = MioDb::open(MioOptions {
        parallel_compaction: false,
        bloom_enabled: false,
        elastic_levels: 3,
        ..MioOptions::small_for_tests()
    })
    .unwrap();
    verify_workload(&db);
}

#[test]
fn bloom_enabled_skips_tables() {
    let db = MioDb::open(MioOptions::small_for_tests()).unwrap();
    for i in 0..3_000u32 {
        db.put(format!("key{i:05}").as_bytes(), &[1u8; 300])
            .unwrap();
    }
    db.wait_idle().unwrap();
    for i in 0..500u32 {
        db.get(format!("key{i:05}").as_bytes()).unwrap();
    }
    assert!(
        db.report().stats.bloom_skips > 0,
        "filters should skip resting tables"
    );
}
