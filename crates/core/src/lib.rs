//! MioDB — an LSM-tree key-value store for hybrid DRAM/NVM memory.
//!
//! This crate is the reproduction's primary contribution: the engine
//! described in *"Revisiting Log-Structured Merging for KV Stores in
//! Hybrid Memory Systems"* (ASPLOS'23). It combines:
//!
//! - a DRAM MemTable protected by an NVM write-ahead log;
//! - **one-piece flushing** (§4.2): the full MemTable arena is copied into
//!   NVM with one bulk memcpy and its pointers are swizzled in the
//!   background while the immutable MemTable still serves reads;
//! - an **elastic multi-level buffer** of PMTables with *no capacity
//!   limits* (§4.1), so flushing is never blocked by lower levels;
//! - **zero-copy compaction** (§4.3): each level's compactor merges its two
//!   oldest PMTables by pointer re-linking only, with an insertion mark
//!   keeping in-flight nodes visible to lock-free readers;
//! - **parallel compaction** (§4.5): one compactor thread per level,
//!   completely independent because merges never cross levels;
//! - **lazy-copy compaction** (§4.4) into the bottom *data repository* — a
//!   huge skip list in NVM, or a traditional SSTable LSM on SSD in
//!   DRAM-NVM-SSD mode (§4.1 "Supporting Memory/Storage Hierarchy") — which
//!   is also the only place memory of superseded nodes is reclaimed;
//! - per-PMTable **mergeable bloom filters** (§4.6) and a configurable
//!   buffer depth for the read/write trade-off of Figure 9;
//! - a manifest in the NVM pool header plus WAL replay for crash recovery
//!   (§4.7), including resumption of interrupted zero-copy merges.
//!
//! # Quick start
//!
//! ```
//! use miodb_core::{MioDb, MioOptions};
//! use miodb_common::KvEngine;
//!
//! # fn main() -> miodb_common::Result<()> {
//! let db = MioDb::open(MioOptions::small_for_tests())?;
//! db.put(b"hello", b"world")?;
//! assert_eq!(db.get(b"hello")?.as_deref(), Some(&b"world"[..]));
//! db.delete(b"hello")?;
//! assert!(db.get(b"hello")?.is_none());
//! # Ok(())
//! # }
//! ```

pub mod db;
pub mod manifest;
pub mod options;
pub mod repository;
pub mod table;

pub use db::{MioDb, WriteBatch};
pub use options::{MioOptions, RepositoryMode};
