//! The MioDB engine: write path, lock-free read path, background flushing
//! and parallel compaction.
//!
//! Threading model (paper §4.5):
//!
//! - the caller's threads execute `put`/`get`/`scan` (writers serialized by
//!   a mutex, readers lock-free against compaction);
//! - one **flush worker** performs one-piece flushes and background
//!   pointer swizzling;
//! - one **compactor thread per elastic level** `0..n-1` merges that
//!   level's two oldest PMTables by zero-copy compaction and pushes the
//!   result down;
//! - one **lazy-copy worker** drains the bottom buffer level into the data
//!   repository and reclaims arena memory (the only GC point, §4.4);
//! - in SSD mode, one **repository maintainer** runs the on-SSD LSM's
//!   compactions.
//!
//! Queries follow the paper's visibility protocol per level: settled
//! tables newest→oldest, then the in-flight merge's newtable, the
//! insertion mark, the oldtable, then a draining table, and finally the
//! repository.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb_common::repl::ReplicationSink;
use miodb_common::trace::{self, SpanKind};
use miodb_common::{
    fault, CompactionKind, EngineReport, EngineTelemetry, Error, KvEngine, OpKind, Result,
    ScanEntry, SequenceNumber, StallKind, Stats,
};
use miodb_lsm::merge_iter::{dedup_newest, KWayMerge};
use miodb_pmem::{DeviceModel, PmemPool, PmemRegion};
use miodb_skiplist::iter::OwnedEntry;
use miodb_skiplist::merge::MergeLimits;
use miodb_skiplist::{
    one_piece_flush, swizzle, zero_copy_merge, GrowableSkipList, InsertionMark, MergeOutcome,
    SkipList,
};
use miodb_wal::WriteAheadLog;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::manifest::{LevelState, Manifest, ManifestState, RepoState, TableState};
use crate::options::{MioOptions, RepositoryMode};
use crate::repository::Repository;
use crate::table::{MemTable, PmTable};

/// Merge steps executed per scan-gate acquisition: bounds how long a scan
/// can be blocked by a zero-copy merge.
const MERGE_STEPS_PER_GATE: usize = 128;

/// Cap on operations coalesced into one write group.
const MAX_GROUP_OPS: usize = 256;

/// Cap on worst-case arena bytes reserved by one write group (LevelDB caps
/// group payloads at 1 MB for the same latency-fairness reason).
const MAX_GROUP_BYTES: u64 = 1 << 20;

/// Extra MemTable capacity requested when a rotation is forced by a group
/// (head node + allocator slack), mirroring the legacy batch path.
const GROUP_ROTATE_SLACK: usize = 4096;

/// Spin iterations before a group participant parks on the commit
/// condvar. Group handoffs are sub-microsecond (the WAL append is the only
/// serialized device work), so parking immediately would put condvar
/// wakeup latency — microseconds — on the critical path of every group.
const COMMIT_SPINS: u32 = 4096;

/// Yield iterations between spinning and parking: on a preempted or
/// single-core host, yielding hands the CPU to the leader, which usually
/// completes the handoff without paying a full park/unpark.
const COMMIT_YIELDS: u32 = 64;

/// Effective spin budget: busy-spinning burns the core the group leader
/// needs to make progress, so hosts without spare parallelism skip the
/// spin phase and go straight to yielding.
fn commit_spins() -> u32 {
    static SPINS: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *SPINS.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => COMMIT_SPINS,
        _ => 0,
    })
}

/// Commit-queue writer phases (see [`PendingWrite::phase`]).
const PH_WAITING: u8 = 0;
const PH_INSERT: u8 = 1;
const PH_INSERTED: u8 = 2;
const PH_DONE: u8 = 3;

/// One writer's pending operations on the commit queue.
///
/// Lifecycle: the owning thread enqueues it (`PH_WAITING`), a group leader
/// logs its ops and hands it an insert task (`PH_INSERT`), the owning
/// thread applies the inserts (`PH_INSERTED`), and the leader publishes
/// the result and pops it from the queue (`PH_DONE`).
struct PendingWrite {
    ops: Vec<(Vec<u8>, Vec<u8>, OpKind)>,
    /// Worst-case arena bytes for all ops (leader capacity reservation).
    need: u64,
    /// User key+value bytes (stats accounting, charged once per group).
    user_bytes: u64,
    phase: AtomicU8,
    /// First sequence number of this writer's dense range, set by the
    /// leader before `PH_INSERT`.
    seq_base: AtomicU64,
    /// MemTable + group sync handed over by the leader before `PH_INSERT`.
    task: Mutex<Option<GroupTask>>,
    /// Failure published to the owning writer (leader abort or its own
    /// insert error).
    err: Mutex<Option<Error>>,
}

/// What a group member needs to apply its inserts.
struct GroupTask {
    table: Arc<MemTable>,
    sync: Arc<GroupSync>,
}

/// Countdown of group members whose MemTable inserts are outstanding; the
/// leader drains it to zero before releasing the writer mutex.
struct GroupSync {
    remaining: AtomicUsize,
}

/// The commit queue: concurrent writers enqueue, the front writer leads.
struct CommitQueue {
    queue: Mutex<VecDeque<Arc<PendingWrite>>>,
    /// Wakes parked writers on group handoff, group completion and leader
    /// promotion.
    cv: Condvar,
}

/// Duplicates an error for fan-out to every member of an aborted group
/// (`Error` holds `std::io::Error` and cannot be `Clone`).
fn clone_error(e: &Error) -> Error {
    match e {
        Error::Io(err) => Error::Background(format!("i/o error: {err}")),
        Error::Corruption(s) => Error::Corruption(s.clone()),
        Error::PoolExhausted {
            requested,
            available,
        } => Error::PoolExhausted {
            requested: *requested,
            available: *available,
        },
        Error::ArenaFull => Error::ArenaFull,
        Error::InvalidArgument(s) => Error::InvalidArgument(s.clone()),
        Error::Closed => Error::Closed,
        Error::Background(s) => Error::Background(s.clone()),
        Error::MaybeApplied(s) => Error::MaybeApplied(s.clone()),
        other => Error::Background(other.to_string()),
    }
}

struct Level {
    /// Settled tables, oldest at the front.
    tables: VecDeque<Arc<PmTable>>,
    /// In-flight zero-copy merge `(newtable, oldtable)`.
    merging: Option<(Arc<PmTable>, Arc<PmTable>)>,
    /// Table currently being lazy-copied into the repository.
    lazy_draining: Option<Arc<PmTable>>,
    /// The level's persistent insertion mark.
    mark: InsertionMark,
    /// Scans exclude zero-copy pointer motion through this gate.
    gate: Arc<Mutex<()>>,
    /// Structural version, bumped (under the levels lock) whenever a
    /// table changes role: settled ↔ merging ↔ lazy-draining ↔ pushed
    /// down. Readers snapshot a level's state once; if the version moved
    /// by the time their probe misses, a table may have been re-linked
    /// *under* the plain (non-mark-aware) search, so the probe retries
    /// against a fresh snapshot. This closes the lost-read window where a
    /// settled-table snapshot went stale the instant the compactor moved
    /// those tables into `merging` (the multi_writer_stress flake).
    version: Arc<AtomicU64>,
}

impl Level {
    /// Bumps the structural version. Callers hold the levels lock.
    fn bump_version(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }
}

struct MemState {
    active: Arc<MemTable>,
    imm: Option<Arc<MemTable>>,
}

struct Inner {
    opts: MioOptions,
    stats: Arc<Stats>,
    nvm: Arc<PmemPool>,
    dram: Arc<PmemPool>,
    seq: AtomicU64,
    mem: RwLock<MemState>,
    write_mutex: Mutex<()>,
    /// Group-commit queue (`opts.write_pipeline`); writers coordinate here
    /// before the leader takes `write_mutex` on the whole group's behalf.
    commit: CommitQueue,
    imm_cv: Condvar,
    flush_flag: Mutex<bool>,
    flush_cv: Condvar,
    levels: Mutex<Vec<Level>>,
    level_cv: Condvar,
    repo: Repository,
    repo_writer: Mutex<()>,
    elastic_bytes: AtomicU64,
    manifest: Manifest,
    shutdown: AtomicBool,
    /// Set by [`MioDb::close`] before the final flush: refuses new writes
    /// while the in-flight commit-queue groups and MemTables drain.
    closing: AtomicBool,
    /// WAL records replayed when this instance was opened (0 after
    /// recovering from a cleanly closed database).
    recovered_wal_records: AtomicU64,
    /// Set while a flush is blocked on the elastic-buffer cap; tells the
    /// lazy worker to drain ahead of the normal trigger.
    pressure: AtomicBool,
    bg_error: Mutex<Option<String>>,
    /// Telemetry collectors: op-latency histograms, per-level gauges and
    /// the structured event trace (`Options::telemetry` knob).
    telemetry: EngineTelemetry,
    /// Replication seam ([`MioDb::set_commit_sink`]): committed WAL
    /// records are handed to the sink in commit order, under the write
    /// mutex, right after their WAL append.
    repl_sink: RwLock<Option<Arc<dyn ReplicationSink>>>,
    /// Fast-path gate for the sink: one relaxed load on the write path
    /// when replication is off.
    repl_armed: AtomicBool,
}

/// The MioDB key-value store. See the [crate docs](crate) for an overview
/// and example.
pub struct MioDb {
    inner: Arc<Inner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for MioDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MioDb")
            .field("name", &self.inner.opts.name)
            .field("levels", &self.inner.levels.lock().len())
            .finish()
    }
}

impl MioDb {
    /// Opens a fresh database.
    ///
    /// # Errors
    ///
    /// Returns configuration or allocation errors.
    pub fn open(opts: MioOptions) -> Result<MioDb> {
        opts.validate()?;
        let stats = Arc::new(Stats::new());
        let nvm = PmemPool::new(opts.nvm_pool_bytes, opts.nvm_device, stats.clone())?;
        Self::open_on_pool(opts, nvm, stats, None)
    }

    /// Recovers a database from a restored NVM pool (crash recovery,
    /// §4.7): reloads the manifest, rebuilds levels and the repository,
    /// resumes interrupted compactions and replays the WALs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] for unreadable persistent state and
    /// [`Error::InvalidArgument`] if `opts` is structurally incompatible
    /// with the recovered state (different level count).
    pub fn recover(nvm: Arc<PmemPool>, opts: MioOptions) -> Result<MioDb> {
        opts.validate()?;
        let stats = nvm.stats().clone();
        Self::open_on_pool(opts, nvm, stats, Some(()))
    }

    fn open_on_pool(
        opts: MioOptions,
        nvm: Arc<PmemPool>,
        stats: Arc<Stats>,
        recovering: Option<()>,
    ) -> Result<MioDb> {
        let dram = PmemPool::new(opts.dram_pool_bytes, DeviceModel::dram(), stats.clone())?;

        let (manifest, prior) = if recovering.is_some() {
            Manifest::load(nvm.clone())?
        } else {
            (Manifest::create(nvm.clone()), None)
        };

        let n = opts.elastic_levels;
        let mut levels = Vec::with_capacity(n);
        let mut repo: Option<Repository> = None;
        let mut seq0 = 0u64;
        let mut wal_replays: Vec<Vec<PmemRegion>> = Vec::new();
        let mut elastic_bytes = 0u64;
        let mut resumed_merges: Vec<(usize, Arc<PmTable>, Arc<PmTable>)> = Vec::new();
        let mut resumed_drain: Option<Arc<PmTable>> = None;

        if let Some(state) = prior {
            // Reject a stale or corrupted manifest before walking anything
            // it names — see ManifestState::validate_live.
            state.validate_live(&nvm)?;
            if state.levels.len() != n {
                return Err(Error::InvalidArgument(format!(
                    "recovered manifest has {} levels, options request {n}",
                    state.levels.len()
                )));
            }
            seq0 = state.seq;
            if let Some(imm) = state.imm_wal {
                wal_replays.push(imm);
            }
            wal_replays.push(state.active_wal);

            for (i, ls) in state.levels.iter().enumerate() {
                let mark = match ls.mark {
                    Some(region) => InsertionMark::from_raw(nvm.clone(), region),
                    None => InsertionMark::alloc(&nvm)?,
                };
                let mut level = Level {
                    tables: VecDeque::new(),
                    merging: None,
                    lazy_draining: None,
                    mark,
                    gate: Arc::new(Mutex::new(())),
                    version: Arc::new(AtomicU64::new(0)),
                };
                for ts in &ls.tables {
                    let t = rebuild_table(
                        &nvm,
                        ts,
                        opts.bloom_bits_per_key,
                        opts.bloom_expected_keys(),
                    );
                    elastic_bytes += t.arena_bytes();
                    level.tables.push_back(t);
                }
                if let Some((new_ts, old_ts)) = &ls.merging {
                    let new_t = rebuild_table(
                        &nvm,
                        new_ts,
                        opts.bloom_bits_per_key,
                        opts.bloom_expected_keys(),
                    );
                    let old_t = rebuild_table(
                        &nvm,
                        old_ts,
                        opts.bloom_bits_per_key,
                        opts.bloom_expected_keys(),
                    );
                    elastic_bytes += new_t.arena_bytes() + old_t.arena_bytes();
                    resumed_merges.push((i, new_t, old_t));
                }
                if let Some(ts) = &ls.lazy_draining {
                    let t = rebuild_table(
                        &nvm,
                        ts,
                        opts.bloom_bits_per_key,
                        opts.bloom_expected_keys(),
                    );
                    elastic_bytes += t.arena_bytes();
                    resumed_drain = Some(t);
                }
                levels.push(level);
            }
            if let Some(rs) = state.repo {
                // An interrupted drain may have allocated past the recorded
                // cursor; burn the chunk tail so no live node is reused.
                let cursor = if resumed_drain.is_some() {
                    rs.end
                } else {
                    rs.cursor
                };
                repo = Some(Repository::Pm(GrowableSkipList::from_parts(
                    nvm.clone(),
                    rs.head,
                    rs.chunk_size as usize,
                    rs.chunks,
                    cursor,
                    rs.end,
                    rs.len,
                    rs.data_bytes,
                )));
            }
        } else {
            for _ in 0..n {
                levels.push(Level {
                    tables: VecDeque::new(),
                    merging: None,
                    lazy_draining: None,
                    mark: InsertionMark::alloc(&nvm)?,
                    gate: Arc::new(Mutex::new(())),
                    version: Arc::new(AtomicU64::new(0)),
                });
            }
        }

        let repo = match repo {
            Some(r) => r,
            None => match &opts.repository {
                RepositoryMode::HugePmTable => {
                    Repository::new_pm(nvm.clone(), opts.repo_chunk_bytes)?
                }
                RepositoryMode::Ssd { lsm, device } => {
                    Repository::new_lsm(lsm.clone(), *device, stats.clone())
                }
            },
        };

        // Resume interrupted zero-copy merges synchronously.
        let mut pending_pushes: Vec<(usize, Arc<PmTable>)> = Vec::new();
        for (i, new_t, old_t) in resumed_merges {
            let level_mark = levels[i].mark.clone();
            let out = zero_copy_merge(
                &nvm,
                new_t.list.head(),
                old_t.list.head(),
                &level_mark,
                MergeLimits::none(),
            );
            let merged = merged_table(&nvm, &new_t, &old_t, out.stats(), opts.bloom_bits_per_key);
            pending_pushes.push((i + 1, merged));
        }
        for (target, merged) in pending_pushes {
            levels[target].tables.push_back(merged);
        }

        // Resume an interrupted lazy-copy drain synchronously.
        if let Some(t) = resumed_drain {
            let merged = dedup_newest(t.list.iter(), false);
            for e in merged {
                repo.apply(&e.key, &e.value, e.seq, e.kind)?;
            }
            if let Ok(table) = Arc::try_unwrap(t) {
                elastic_bytes -= table.arena_bytes();
                table.release(&nvm);
            }
        }

        let active = Arc::new(MemTable::new(
            &dram,
            &nvm,
            opts.memtable_bytes,
            opts.wal_segment_bytes,
            opts.bloom_bits_per_key,
            opts.bloom_expected_keys(),
        )?);

        let telemetry = EngineTelemetry::new(n, &opts.telemetry);
        let inner = Arc::new(Inner {
            opts,
            stats,
            nvm,
            dram,
            seq: AtomicU64::new(seq0),
            mem: RwLock::new(MemState { active, imm: None }),
            write_mutex: Mutex::new(()),
            commit: CommitQueue {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            },
            imm_cv: Condvar::new(),
            flush_flag: Mutex::new(false),
            flush_cv: Condvar::new(),
            levels: Mutex::new(levels),
            level_cv: Condvar::new(),
            repo,
            repo_writer: Mutex::new(()),
            elastic_bytes: AtomicU64::new(elastic_bytes),
            manifest,
            shutdown: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            recovered_wal_records: AtomicU64::new(0),
            pressure: AtomicBool::new(false),
            bg_error: Mutex::new(None),
            telemetry,
            repl_sink: RwLock::new(None),
            repl_armed: AtomicBool::new(false),
        });

        store_manifest(&inner)?;

        let db = MioDb {
            threads: Mutex::new(spawn_workers(&inner)),
            inner,
        };

        // Replay WALs from the recovered state through the normal write
        // machinery (records carry their original sequence numbers). The
        // chain walk finds segments allocated after the manifest's last
        // store, so no acknowledged write or sequence number is lost.
        let mut records = Vec::new();
        let mut reclaim: Vec<PmemRegion> = Vec::new();
        for segs in &wal_replays {
            if let Some(first) = segs.first() {
                let (recs, visited) = WriteAheadLog::replay_chain(&db.inner.nvm, *first)?;
                records.extend(recs);
                reclaim.extend(visited);
            }
        }
        records.sort_by_key(|r| r.seq);
        db.inner
            .recovered_wal_records
            .store(records.len() as u64, Ordering::Relaxed);
        let guard = db.inner.write_mutex.lock();
        for r in &records {
            db.inner.seq.fetch_max(r.seq, Ordering::Relaxed);
            db.insert_locked(&r.key, &r.value, r.seq, r.kind)?;
        }
        drop(guard);
        for region in reclaim {
            db.inner.nvm.free(region);
        }
        if !records.is_empty() {
            store_manifest(&db.inner)?;
        }
        Ok(db)
    }

    /// The engine's NVM pool (snapshot it for crash tests).
    pub fn nvm_pool(&self) -> &Arc<PmemPool> {
        &self.inner.nvm
    }

    /// Shared statistics.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.inner.stats
    }

    /// Bytes currently held by elastic-buffer PMTables.
    pub fn elastic_buffer_bytes(&self) -> u64 {
        self.inner.elastic_bytes.load(Ordering::Relaxed)
    }

    /// The sticky background error, if a flush/compaction/lazy-copy worker
    /// exhausted its retries and degraded the engine to read-only.
    pub fn background_error(&self) -> Option<String> {
        self.inner.bg_error.lock().clone()
    }

    /// Takes a point-in-time snapshot of the NVM pool (crash simulation).
    ///
    /// A real power failure freezes all stores at one instant; a memcpy of
    /// the live pool does not. To keep the captured state self-consistent
    /// this briefly quiesces every *structural* transition — writers, all
    /// zero-copy merges (via the scan gates), the lazy-copy drain and
    /// manifest stores — before copying. Lock order (gates → repo →
    /// levels) never inverts any background thread's order, so this cannot
    /// deadlock. Unpublished work (an in-flight one-piece flush memcpy)
    /// may still land torn in the file, which is harmless: the manifest
    /// does not reference it yet.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the snapshot file.
    pub fn snapshot(&self, path: &std::path::Path) -> Result<()> {
        let inner = &*self.inner;
        let _writers = inner.write_mutex.lock();
        let gates: Vec<Arc<Mutex<()>>> = {
            let levels = inner.levels.lock();
            levels.iter().map(|l| l.gate.clone()).collect()
        };
        let _gate_guards: Vec<_> = gates.iter().map(|g| g.lock()).collect();
        let _repo = inner.repo_writer.lock();
        let _levels = inner.levels.lock();
        inner.nvm.snapshot_to_file(path)
    }

    fn check_usable(&self) -> Result<()> {
        if self.inner.shutdown.load(Ordering::Acquire) || self.inner.closing.load(Ordering::Acquire)
        {
            return Err(Error::Closed);
        }
        if let Some(msg) = self.inner.bg_error.lock().clone() {
            return Err(Error::Background(msg));
        }
        Ok(())
    }

    fn write(&self, key: &[u8], value: &[u8], kind: OpKind) -> Result<()> {
        self.check_usable()?;
        let t0 = Instant::now();
        let r = if self.inner.opts.write_pipeline {
            if key.len() > u32::MAX as usize || value.len() > u32::MAX as usize {
                return Err(Error::InvalidArgument("key/value too large".to_string()));
            }
            match self.try_write_uncontended(key, value, kind) {
                Some(r) => r,
                None => self.write_grouped(vec![(key.to_vec(), value.to_vec(), kind)]),
            }
        } else {
            let guard = self.inner.write_mutex.lock();
            Stats::add(
                &self.inner.stats.user_bytes_written,
                (key.len() + value.len()) as u64,
            );
            let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
            self.insert_with_rotation(guard, key, value, seq, kind)
        };
        if r.is_ok() {
            let h = match kind {
                OpKind::Put => &self.inner.telemetry.put_latency,
                OpKind::Delete => &self.inner.telemetry.delete_latency,
            };
            h.record(dur_ns(t0.elapsed()));
        }
        r
    }

    /// Uncontended fast path for the pipeline: with no writers queued and
    /// the writer mutex immediately available, grouping can only add
    /// overhead (allocation, key/value copies, queue churn), so the write
    /// runs the legacy single-writer protocol — the same mutex, the same
    /// WAL-then-insert order, so every pipeline invariant holds. Returns
    /// `None` when contended; the caller falls back to the commit queue,
    /// which is exactly the regime where grouping wins.
    fn try_write_uncontended(&self, key: &[u8], value: &[u8], kind: OpKind) -> Option<Result<()>> {
        if !self.inner.commit.queue.lock().is_empty() {
            return None;
        }
        let guard = self.inner.write_mutex.try_lock()?;
        Stats::add(
            &self.inner.stats.user_bytes_written,
            (key.len() + value.len()) as u64,
        );
        self.inner.telemetry.write_group_size.record(1);
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        Some(self.insert_with_rotation(guard, key, value, seq, kind))
    }

    /// The group-commit write path: enqueue on the commit queue, then
    /// either lead a group (if we reach the queue front) or follow (apply
    /// our MemTable inserts when the leader releases us).
    ///
    /// Callers must have validated op sizes: a `write_grouped` op can only
    /// fail on systemic errors, which abort the whole group, never on
    /// per-op argument errors that would punish innocent group members.
    fn write_grouped(&self, ops: Vec<(Vec<u8>, Vec<u8>, OpKind)>) -> Result<()> {
        let inner = &*self.inner;
        let need: u64 = ops
            .iter()
            .map(|(k, v, _)| miodb_skiplist::node_size_upper(k.len(), v.len()))
            .sum();
        let user_bytes: u64 = ops.iter().map(|(k, v, _)| (k.len() + v.len()) as u64).sum();
        let w = Arc::new(PendingWrite {
            ops,
            need,
            user_bytes,
            phase: AtomicU8::new(PH_WAITING),
            seq_base: AtomicU64::new(0),
            task: Mutex::new(None),
            err: Mutex::new(None),
        });
        let mut commit_span = trace::span(SpanKind::CommitWait);
        {
            let mut q = inner.commit.queue.lock();
            q.push_back(w.clone());
            let depth = q.len() as u64;
            inner.telemetry.set_commit_queue_depth(depth);
            commit_span.annotate(depth);
        }
        let mut spun = 0u32;
        loop {
            match w.phase.load(Ordering::Acquire) {
                PH_DONE => {
                    return match w.err.lock().take() {
                        Some(e) => Err(e),
                        // Committed: block for the replication ack level
                        // on this writer's last sequence number (no-op
                        // when replication is off).
                        None => {
                            let seq_base = w.seq_base.load(Ordering::Acquire);
                            self.repl_wait(seq_base + w.ops.len() as u64 - 1)
                        }
                    };
                }
                PH_INSERT => {
                    self.run_group_insert(&w);
                    spun = 0;
                    continue;
                }
                PH_WAITING => {
                    // The queue front is popped only when its group
                    // completes, so being front while still WAITING means
                    // no group is in flight: we are the leader.
                    let am_front = {
                        let q = inner.commit.queue.lock();
                        q.front().is_some_and(|f| Arc::ptr_eq(f, &w))
                    };
                    if am_front && w.phase.load(Ordering::Acquire) == PH_WAITING {
                        self.lead_group(&w);
                        continue;
                    }
                }
                _ => {}
            }
            // Spin briefly — group handoffs are sub-microsecond — then
            // yield, then park until the leader wakes us.
            let spins = commit_spins();
            if spun < spins {
                spun += 1;
                std::hint::spin_loop();
                continue;
            }
            if spun < spins + COMMIT_YIELDS {
                spun += 1;
                std::thread::yield_now();
                continue;
            }
            let mut q = inner.commit.queue.lock();
            let ph = w.phase.load(Ordering::Acquire);
            let is_front = q.front().is_some_and(|f| Arc::ptr_eq(f, &w));
            if (ph == PH_WAITING && !is_front) || ph == PH_INSERTED {
                inner.commit.cv.wait_for(&mut q, Duration::from_micros(500));
            }
        }
    }

    /// Applies one group member's MemTable inserts (CAS splicing, runs
    /// concurrently with the other members) and counts it off the group.
    fn run_group_insert(&self, w: &PendingWrite) {
        let inner = &*self.inner;
        // Invariant (group-commit protocol): the leader stores a task into
        // every member *before* moving it to PH_INSERT, and only this
        // member takes it — a missing task is leader-protocol corruption,
        // not a runtime condition a caller could handle.
        let task = w.task.lock().take().expect("insert phase without task");
        let seq_base = w.seq_base.load(Ordering::Acquire);
        let mut insert_span = trace::span(SpanKind::MemtableInsert);
        insert_span.annotate(w.ops.len() as u64);
        for (i, (key, value, kind)) in w.ops.iter().enumerate() {
            if let Err(e) = task
                .table
                .insert_concurrent(key, value, seq_base + i as u64, *kind)
            {
                *w.err.lock() = Some(e);
                break;
            }
        }
        w.phase.store(PH_INSERTED, Ordering::Release);
        if task.sync.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last insert of the group: wake the draining leader.
            // Lock-then-notify closes its check-then-park window.
            drop(inner.commit.queue.lock());
            inner.commit.cv.notify_all();
        }
    }

    /// Leads one write group: seals a queue prefix, reserves MemTable
    /// capacity (rotating if needed), allocates one dense sequence range,
    /// appends **one** combined WAL record, releases the members to insert
    /// in parallel, drains them, and publishes the results.
    ///
    /// The writer mutex is held from capacity reservation until the last
    /// member's insert lands, so rotation and snapshots never observe a
    /// half-applied group — the same quiescence point the single-writer
    /// path provides, now at group granularity.
    fn lead_group(&self, lw: &Arc<PendingWrite>) {
        let inner = &*self.inner;
        // Seal the group: a prefix of the queue, bounded so one group
        // cannot starve later arrivals or overrun a MemTable.
        let group: Vec<Arc<PendingWrite>> = {
            let q = inner.commit.queue.lock();
            let mut g: Vec<Arc<PendingWrite>> = Vec::new();
            let mut ops = 0usize;
            let mut bytes = 0u64;
            for w in q.iter() {
                if !g.is_empty()
                    && (ops + w.ops.len() > MAX_GROUP_OPS || bytes + w.need > MAX_GROUP_BYTES)
                {
                    break;
                }
                ops += w.ops.len();
                bytes += w.need;
                g.push(w.clone());
            }
            g
        };
        debug_assert!(Arc::ptr_eq(&group[0], lw), "leader must be queue front");
        let total_ops: u64 = group.iter().map(|w| w.ops.len() as u64).sum();
        let total_need: u64 = group.iter().map(|w| w.need).sum();
        let total_user: u64 = group.iter().map(|w| w.user_bytes).sum();

        let commit_res: Result<()> = (|| {
            let mut guard = inner.write_mutex.lock();
            // Reserve worst-case capacity for the whole group up front so
            // no member can hit ArenaFull mid-flight.
            loop {
                {
                    let active = inner.mem.read().active.clone();
                    if active.arena().remaining_bytes() >= total_need {
                        break;
                    }
                }
                self.rotate_memtable(Some(&mut guard), total_need as usize + GROUP_ROTATE_SLACK)?;
            }
            let active = inner.mem.read().active.clone();
            // One dense sequence range, one combined WAL record: the
            // group's single modeled NVM append.
            let seq_base = inner.seq.fetch_add(total_ops, Ordering::Relaxed) + 1;
            let mut gops = Vec::with_capacity(total_ops as usize);
            for w in &group {
                for (key, value, kind) in &w.ops {
                    gops.push(miodb_wal::GroupOp {
                        key,
                        value,
                        kind: *kind,
                    });
                }
            }
            {
                let mut wal_span = trace::span(SpanKind::WalAppend);
                wal_span.annotate(total_ops);
                active.log_group(&gops, seq_base)?;
            }
            if inner.repl_armed.load(Ordering::Acquire) {
                // Ship the group's combined record exactly as logged; each
                // member waits for its own ack after release.
                if let Ok(bytes) = miodb_wal::encode_group_record(&gops, seq_base) {
                    self.repl_publish(&bytes, seq_base, seq_base + total_ops - 1);
                }
            }
            Stats::add(&inner.stats.user_bytes_written, total_user);
            inner.telemetry.write_group_size.record(total_ops);

            // Hand out the insert tasks. With spare cores the members
            // splice into the MemTable in parallel (the leader's own
            // inserts run on this thread); without them — a single-core
            // host — waking a follower just to insert costs two context
            // switches per member, so the leader applies every member's
            // ops itself and followers wake once, at completion.
            let leader_applies = commit_spins() == 0;
            let sync = Arc::new(GroupSync {
                remaining: AtomicUsize::new(group.len()),
            });
            let mut next_seq = seq_base;
            for w in &group {
                w.seq_base.store(next_seq, Ordering::Relaxed);
                next_seq += w.ops.len() as u64;
                *w.task.lock() = Some(GroupTask {
                    table: active.clone(),
                    sync: sync.clone(),
                });
                if !leader_applies && !Arc::ptr_eq(w, lw) {
                    w.phase.store(PH_INSERT, Ordering::Release);
                }
            }
            if leader_applies {
                for w in &group {
                    self.run_group_insert(w);
                }
            } else {
                if group.len() > 1 {
                    drop(inner.commit.queue.lock());
                    inner.commit.cv.notify_all();
                }
                self.run_group_insert(lw);
            }

            // Drain the group before releasing the writer mutex.
            let mut spun = 0u32;
            let spins = commit_spins();
            while sync.remaining.load(Ordering::Acquire) > 0 {
                if spun < spins {
                    spun += 1;
                    std::hint::spin_loop();
                    continue;
                }
                if spun < spins + COMMIT_YIELDS {
                    spun += 1;
                    std::thread::yield_now();
                    continue;
                }
                let mut q = inner.commit.queue.lock();
                if sync.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                inner.commit.cv.wait_for(&mut q, Duration::from_micros(500));
            }
            drop(guard);
            Ok(())
        })();

        // Publish results, pop the group, promote the next leader.
        let mut q = inner.commit.queue.lock();
        for w in &group {
            // Invariant (group-commit protocol): the sealed group is a
            // prefix of the queue and only its leader pops — members park
            // until PH_DONE, so the queue cannot lose them mid-group.
            let front = q.pop_front().expect("group member missing from queue");
            debug_assert!(Arc::ptr_eq(&front, w));
            if let Err(e) = &commit_res {
                *w.err.lock() = Some(clone_error(e));
            }
            w.phase.store(PH_DONE, Ordering::Release);
        }
        inner.telemetry.set_commit_queue_depth(q.len() as u64);
        drop(q);
        inner.commit.cv.notify_all();
    }

    /// Highest sequence number allocated so far (dense-sequence test
    /// support and diagnostics).
    pub fn last_sequence(&self) -> SequenceNumber {
        self.inner.seq.load(Ordering::Acquire)
    }

    /// Installs (or, with `None`, removes) the replication sink.
    ///
    /// While a sink is set, every committed write hands its framed WAL
    /// record bytes to [`ReplicationSink::publish`] in commit order
    /// (under the write mutex, right after the WAL append), and every
    /// user-visible write additionally blocks on
    /// [`ReplicationSink::wait_committed`] after the commit critical
    /// section — the hook a semi-sync ack level uses to delay the
    /// acknowledgement until a follower has the write.
    ///
    /// Recovery replay never publishes: the sink is installed on an
    /// already-open database, and a follower resumes from its applied
    /// offset rather than re-shipping history.
    pub fn set_commit_sink(&self, sink: Option<Arc<dyn ReplicationSink>>) {
        let armed = sink.is_some();
        *self.inner.repl_sink.write() = sink;
        self.inner.repl_armed.store(armed, Ordering::Release);
    }

    /// Applies records shipped from a replication leader, advancing the
    /// local sequence counter to cover them. Records flow through the
    /// normal MemTable insert (including the local WAL append), so a
    /// follower crash replays them like its own writes.
    ///
    /// Callers must apply records in shipped (commit) order; sequence
    /// numbers already covered by `last_sequence` are the caller's
    /// responsibility to skip.
    ///
    /// # Errors
    ///
    /// Returns the usual write-path failures ([`Error::Closed`],
    /// [`Error::Background`], capacity errors).
    pub fn apply_replicated(&self, records: &[miodb_wal::WalRecord]) -> Result<()> {
        self.check_usable()?;
        let guard = self.inner.write_mutex.lock();
        for r in records {
            self.inner.seq.fetch_max(r.seq, Ordering::Relaxed);
            self.insert_locked(&r.key, &r.value, r.seq, r.kind)?;
        }
        drop(guard);
        Ok(())
    }

    /// Publishes committed record bytes to the replication sink, if set.
    /// Call sites hold the write mutex, so publishes arrive in commit
    /// order with dense sequence ranges.
    #[inline]
    fn repl_publish(&self, bytes: &[u8], seq_first: u64, seq_last: u64) {
        if let Some(sink) = self.inner.repl_sink.read().as_ref() {
            sink.publish(bytes, seq_first, seq_last);
        }
    }

    /// Blocks until the sink's ack level is satisfied for `seq_last`
    /// (no-op when replication is off). Called after the commit critical
    /// section, never under the write mutex.
    #[inline]
    fn repl_wait(&self, seq_last: u64) -> Result<()> {
        if !self.inner.repl_armed.load(Ordering::Acquire) {
            return Ok(());
        }
        let sink = self.inner.repl_sink.read().clone();
        match sink {
            Some(s) => s.wait_committed(seq_last),
            None => Ok(()),
        }
    }

    /// WAL records replayed when this instance was opened. A database
    /// recovered from a [`MioDb::close`]d state reports 0: clean shutdown
    /// flushes everything into PMTables and never relies on WAL replay.
    pub fn recovered_wal_records(&self) -> u64 {
        self.inner.recovered_wal_records.load(Ordering::Relaxed)
    }

    /// Gracefully shuts the engine down: refuses new writes, drains every
    /// in-flight commit-queue group through the write pipeline, seals and
    /// flushes the active MemTable, persists the manifest and joins the
    /// background threads.
    ///
    /// After `close`, a [`MioDb::recover`] of the same pool finds every
    /// acknowledged write in flushed PMTables — it replays zero WAL
    /// records ([`MioDb::recovered_wal_records`]). Dropping the handle
    /// without calling `close` performs the same drain best-effort.
    ///
    /// Idempotent: concurrent and repeated calls wait for the first
    /// closer to finish and return `Ok`.
    ///
    /// # Errors
    ///
    /// Returns background-thread failures observed while draining; the
    /// engine still shuts down.
    pub fn close(&self) -> Result<()> {
        let inner = &*self.inner;
        if inner.closing.swap(true, Ordering::AcqRel) {
            // Another closer (or a prior close) owns the drain; wait for
            // the handoff point where background work is stopped.
            while !inner.shutdown.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(100));
            }
            for t in self.threads.lock().drain(..) {
                let _ = t.join();
            }
            return Ok(());
        }
        let drained = self.drain_for_close();
        inner.shutdown.store(true, Ordering::Release);
        inner.flush_cv.notify_all();
        {
            let _writers = inner.write_mutex.lock();
            inner.imm_cv.notify_all();
        }
        {
            let _levels = inner.levels.lock();
            inner.level_cv.notify_all();
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
        drained
    }

    /// The close-time drain: waits out the commit queue, flushes the
    /// MemTables and stores a final manifest. Runs with `closing` set, so
    /// the queue and MemTable can only shrink once the last pre-close
    /// writer finishes.
    fn drain_for_close(&self) -> Result<()> {
        let inner = &*self.inner;
        let bg_failed = |inner: &Inner| -> Result<()> {
            match inner.bg_error.lock().clone() {
                Some(msg) => Err(Error::Background(msg)),
                None => Ok(()),
            }
        };
        loop {
            // In-flight groups: leaders hold the writer mutex until the
            // whole group's WAL record and MemTable inserts land, so an
            // empty queue means every acknowledged grouped write is
            // applied.
            while !inner.commit.queue.lock().is_empty() {
                bg_failed(inner)?;
                std::thread::sleep(Duration::from_micros(50));
            }
            // Let the flush worker finish any sealed MemTable.
            while inner.mem.read().imm.is_some() {
                bg_failed(inner)?;
                std::thread::sleep(Duration::from_micros(100));
            }
            {
                let mut guard = inner.write_mutex.lock();
                let active_empty = {
                    let mem = inner.mem.read();
                    mem.active.list().iter().next().is_none() && mem.imm.is_none()
                };
                if active_empty {
                    // Nothing pending under the writer mutex; a writer
                    // that raced past `closing` would have needed this
                    // mutex, so the engine is quiesced.
                    if inner.commit.queue.lock().is_empty() {
                        drop(guard);
                        break;
                    }
                } else {
                    self.rotate_memtable(Some(&mut guard), 0)?;
                }
            }
        }
        store_manifest(inner)
    }

    /// Insert assuming `write_mutex` is held by the caller (recovery path).
    fn insert_locked(
        &self,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<()> {
        let inner = &*self.inner;
        loop {
            // Scope the Arc clone to the attempt: holding it across the
            // rotation wait would keep the table's refcount elevated while
            // the flush worker spin-waits for uniqueness — a cycle that
            // costs the full release timeout per rotation.
            let r = {
                let active = inner.mem.read().active.clone();
                active.insert(key, value, seq, kind)
            };
            match r {
                Ok(()) => return Ok(()),
                Err(Error::ArenaFull) => self.rotate_memtable(None, min_capacity(key, value))?,
                Err(e) => return Err(e),
            }
        }
    }

    fn insert_with_rotation(
        &self,
        mut guard: parking_lot::MutexGuard<'_, ()>,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<()> {
        let inner = &*self.inner;
        loop {
            // See `insert_locked` for why the clone must not outlive the
            // attempt.
            let r = {
                let active = inner.mem.read().active.clone();
                // Uncontended/legacy path: WAL append and skiplist splice
                // happen inside `insert`, so the span covers both (the
                // grouped path separates them).
                let _insert_span = trace::span(SpanKind::MemtableInsert);
                active.insert(key, value, seq, kind)
            };
            match r {
                Ok(()) => {
                    if inner.repl_armed.load(Ordering::Acquire) {
                        // Re-encode the exact framed record the WAL holds
                        // (the encoders are deterministic) and ship it;
                        // the ack wait happens off the mutex.
                        if let Ok(bytes) = miodb_wal::encode_record(key, value, seq, kind) {
                            self.repl_publish(&bytes, seq, seq);
                        }
                        drop(guard);
                        return self.repl_wait(seq);
                    }
                    return Ok(());
                }
                Err(Error::ArenaFull) => {
                    self.rotate_memtable(Some(&mut guard), min_capacity(key, value))?
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Seals the active MemTable and installs a fresh one. If an immutable
    /// MemTable is still being flushed this blocks — an **interval stall**
    /// in the paper's terminology (in MioDB it is nearly always zero
    /// because one-piece flushing is a single memcpy).
    fn rotate_memtable(
        &self,
        guard: Option<&mut parking_lot::MutexGuard<'_, ()>>,
        min_capacity: usize,
    ) -> Result<()> {
        let inner = &*self.inner;
        let t0 = Instant::now();
        let mut stalled = false;
        // Covers the whole rotation (stall wait, fresh-table allocation,
        // manifest store) — all of it is write-path wall time the caller
        // is blocked on. The annotation links the flush span this
        // rotation waits for (0 if none is in flight).
        let mut rotation_span = trace::span(SpanKind::RotationStall);
        match guard {
            Some(guard) => {
                while inner.mem.read().imm.is_some() {
                    if !stalled {
                        stalled = true;
                        inner.telemetry.stall_begin(StallKind::Interval);
                        rotation_span.annotate(inner.telemetry.flush_span());
                    }
                    inner.imm_cv.wait_for(guard, Duration::from_millis(5));
                    if inner.shutdown.load(Ordering::Acquire) {
                        return Err(Error::Closed);
                    }
                    if let Some(msg) = inner.bg_error.lock().clone() {
                        return Err(Error::Background(msg));
                    }
                }
            }
            None => {
                while inner.mem.read().imm.is_some() {
                    if !stalled {
                        stalled = true;
                        inner.telemetry.stall_begin(StallKind::Interval);
                        rotation_span.annotate(inner.telemetry.flush_span());
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        if stalled {
            let waited = t0.elapsed();
            Stats::add_time(&inner.stats.interval_stall_ns, waited);
            Stats::add(&inner.stats.interval_stall_count, 1);
            inner.telemetry.stall_end(StallKind::Interval, waited);
        }
        let fresh = Arc::new(MemTable::new(
            &inner.dram,
            &inner.nvm,
            inner.opts.memtable_bytes.max(min_capacity),
            inner.opts.wal_segment_bytes,
            inner.opts.bloom_bits_per_key,
            inner.opts.bloom_expected_keys(),
        )?);
        {
            let mut mem = inner.mem.write();
            let old = std::mem::replace(&mut mem.active, fresh);
            mem.imm = Some(old);
        }
        // Wake the flush worker no matter how the manifest store below
        // fares: once `imm` is set, failing to kick the worker would leave
        // it sealed forever and every later rotation would stall on
        // `imm.is_some()` with no background error to break the wait.
        let kick_flush = || {
            let mut flag = inner.flush_flag.lock();
            *flag = true;
            inner.flush_cv.notify_all();
        };
        if let Err(e) = with_bg_retries(inner, || store_manifest(inner)) {
            // The manifest must reference the fresh WAL before writes into
            // it are acknowledged; degrade instead of risking silent loss
            // of those acknowledged writes on a crash.
            set_bg_error(inner, format!("manifest store failed: {e}"));
            kick_flush();
            return Err(e);
        }
        kick_flush();
        Ok(())
    }

    /// Searches every structure without bloom filters and reports where
    /// `key` is found — a diagnostic for visibility debugging.
    #[doc(hidden)]
    pub fn debug_locate(&self, key: &[u8]) -> Vec<String> {
        let inner = &*self.inner;
        let mut found = Vec::new();
        {
            let mem = inner.mem.read();
            if mem.active.list().get(key).is_some() {
                found.push("active".to_string());
            }
            if let Some(imm) = &mem.imm {
                if imm.list().get(key).is_some() {
                    found.push("imm".to_string());
                }
            }
        }
        let n = inner.opts.elastic_levels;
        for i in 0..n {
            let (tables, merging, lazy, mark) = {
                let levels = inner.levels.lock();
                (
                    levels[i].tables.iter().cloned().collect::<Vec<_>>(),
                    levels[i].merging.clone(),
                    levels[i].lazy_draining.clone(),
                    levels[i].mark.clone(),
                )
            };
            for (j, t) in tables.iter().enumerate() {
                if t.list.get(key).is_some() {
                    let b = t.bloom.may_contain(key);
                    found.push(format!("L{i}[{j}] bloom={b}"));
                }
            }
            if let Some((new_t, old_t)) = merging {
                if new_t.list.get(key).is_some() {
                    found.push(format!(
                        "L{i}.merging.new bloom={} bits={} n={}",
                        new_t.bloom.may_contain(key),
                        new_t.bloom.num_bits(),
                        new_t.len
                    ));
                }
                if old_t.list.get(key).is_some() {
                    found.push(format!(
                        "L{i}.merging.old bloom={} (new-side bloom={}) old_bits={} new_bits={}",
                        old_t.bloom.may_contain(key),
                        new_t.bloom.may_contain(key),
                        old_t.bloom.num_bits(),
                        new_t.bloom.num_bits()
                    ));
                }
            }
            if mark.read(key).is_some() {
                found.push(format!("L{i}.mark"));
            }
            if let Some(t) = lazy {
                if t.list.get(key).is_some() {
                    found.push(format!("L{i}.lazy bloom={}", t.bloom.may_contain(key)));
                }
            }
        }
        if inner.repo.get(key).ok().flatten().is_some() {
            found.push("repo".to_string());
        }
        found
    }

    /// Audits every table's bloom filter against its list contents,
    /// returning descriptions of any false negatives (which must never
    /// exist). Diagnostic only.
    #[doc(hidden)]
    pub fn debug_bloom_audit(&self) -> Vec<String> {
        let inner = &*self.inner;
        let mut bad = Vec::new();
        let n = inner.opts.elastic_levels;
        for i in 0..n {
            let (tables, merging, lazy) = {
                let levels = inner.levels.lock();
                (
                    levels[i].tables.iter().cloned().collect::<Vec<_>>(),
                    levels[i].merging.clone(),
                    levels[i].lazy_draining.clone(),
                )
            };
            let mut audit = |label: String, t: &Arc<PmTable>| {
                let mut missing = 0usize;
                let mut total = 0usize;
                for e in t.list.iter() {
                    total += 1;
                    if !t.bloom.may_contain(&e.key) {
                        missing += 1;
                    }
                }
                if missing > 0 {
                    bad.push(format!(
                        "{label}: {missing}/{total} keys missing from bloom"
                    ));
                }
            };
            for (j, t) in tables.iter().enumerate() {
                audit(format!("L{i}[{j}]"), t);
            }
            if let Some((new_t, old_t)) = &merging {
                audit(format!("L{i}.merging.new"), new_t);
                audit(format!("L{i}.merging.old"), old_t);
            }
            if let Some(t) = &lazy {
                audit(format!("L{i}.lazy"), t);
            }
        }
        bad
    }

    /// Resolves a lookup result into the engine-level answer.
    fn resolve(r: miodb_skiplist::LookupResult) -> Option<Vec<u8>> {
        match r.kind {
            OpKind::Put => Some(r.value),
            OpKind::Delete => None,
        }
    }
}

fn rebuild_table(
    nvm: &Arc<PmemPool>,
    ts: &TableState,
    bloom_bits: usize,
    bloom_expected: usize,
) -> Arc<PmTable> {
    let list = SkipList::from_raw(nvm.clone(), ts.head);
    let bloom = PmTable::rebuild_bloom(&list, bloom_expected, bloom_bits);
    Arc::new(PmTable {
        list,
        arenas: ts.arenas.clone(),
        bloom,
        len: ts.len as usize,
        data_bytes: ts.data_bytes,
        newest_seq: ts.newest_seq,
    })
}

fn table_state(t: &PmTable) -> TableState {
    TableState {
        head: t.list.head(),
        len: t.len as u64,
        data_bytes: t.data_bytes,
        newest_seq: t.newest_seq,
        arenas: t.arenas.clone(),
    }
}

/// Builds the merged table descriptor after a zero-copy merge: the old
/// table's head now roots the union, arenas are pooled, blooms are OR-ed.
fn merged_table(
    nvm: &Arc<PmemPool>,
    new_t: &PmTable,
    old_t: &PmTable,
    stats: miodb_skiplist::MergeStats,
    bloom_bits: usize,
) -> Arc<PmTable> {
    let mut arenas = old_t.arenas.clone();
    arenas.extend_from_slice(&new_t.arenas);
    let mut bloom = old_t.bloom.clone();
    if bloom.merge(&new_t.bloom).is_err() {
        // Geometry drift (e.g. recovery rebuilt with a different expected
        // size): rebuild from the merged list.
        bloom = PmTable::rebuild_bloom(&old_t.list, old_t.len + new_t.len, bloom_bits);
    }
    let len = (old_t.len as u64 + stats.moved).saturating_sub(stats.bypassed_old) as usize;
    Arc::new(PmTable {
        list: SkipList::from_raw(nvm.clone(), old_t.list.head()),
        arenas,
        bloom,
        len,
        data_bytes: old_t.data_bytes + new_t.data_bytes,
        newest_seq: new_t.newest_seq.max(old_t.newest_seq),
    })
}

/// Serializes the full engine state for the manifest. Takes the levels
/// lock (callers must not hold it).
fn store_manifest(inner: &Inner) -> Result<()> {
    let levels = inner.levels.lock();
    store_manifest_locked(inner, &levels)
}

/// Serializes state with the levels lock already held.
fn store_manifest_locked(inner: &Inner, levels: &[Level]) -> Result<()> {
    let mem = inner.mem.read();
    let state = ManifestState {
        seq: inner.seq.load(Ordering::Relaxed),
        active_wal: mem.active.wal_segments(),
        imm_wal: mem.imm.as_ref().map(|m| m.wal_segments()),
        levels: levels
            .iter()
            .map(|l| LevelState {
                mark: Some(l.mark.region()),
                merging: l
                    .merging
                    .as_ref()
                    .map(|(n, o)| (table_state(n), table_state(o))),
                lazy_draining: l.lazy_draining.as_ref().map(|t| table_state(t)),
                tables: l.tables.iter().map(|t| table_state(t)).collect(),
            })
            .collect(),
        repo: match &inner.repo {
            Repository::Pm(r) => {
                let (head, chunks, cursor, end, len, data_bytes) = r.parts();
                Some(RepoState {
                    head,
                    chunk_size: inner.opts.repo_chunk_bytes as u64,
                    cursor,
                    end,
                    len,
                    data_bytes,
                    chunks,
                })
            }
            Repository::Lsm(_) => None,
        },
    };
    drop(mem);
    inner.manifest.store(&state)
}

fn spawn_workers(inner: &Arc<Inner>) -> Vec<std::thread::JoinHandle<()>> {
    let mut threads = Vec::new();
    {
        let inner = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name("miodb-flush".to_string())
                .spawn(move || flush_worker(inner))
                .expect("spawn flush worker"),
        );
    }
    let n = inner.opts.elastic_levels;
    if inner.opts.parallel_compaction {
        for i in 0..n.saturating_sub(1) {
            let inner = inner.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("miodb-compact-L{i}"))
                    .spawn(move || compactor_worker(inner, i))
                    .expect("spawn compactor"),
            );
        }
    } else if n > 1 {
        let inner = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name("miodb-compact-serial".to_string())
                .spawn(move || serial_compactor_worker(inner))
                .expect("spawn serial compactor"),
        );
    }
    {
        let inner = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name("miodb-lazy".to_string())
                .spawn(move || lazy_worker(inner))
                .expect("spawn lazy worker"),
        );
    }
    if matches!(inner.repo, Repository::Lsm(_)) {
        let inner = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name("miodb-repo".to_string())
                .spawn(move || repo_worker(inner))
                .expect("spawn repo worker"),
        );
    }
    if let Some(interval) = inner.opts.telemetry.report_interval {
        let inner = inner.clone();
        threads.push(
            std::thread::Builder::new()
                .name("miodb-reporter".to_string())
                .spawn(move || reporter_worker(inner, interval))
                .expect("spawn reporter"),
        );
    }
    threads
}

fn set_bg_error(inner: &Inner, msg: String) {
    let mut e = inner.bg_error.lock();
    if e.is_none() {
        *e = Some(msg);
    }
}

/// Background-worker retry budget: a transient failure (injected fault,
/// momentary pool pressure, repository hiccup) is retried this many times
/// with exponential backoff before the engine degrades to read-only.
const BG_RETRIES: u32 = 5;
const BG_BACKOFF_BASE: Duration = Duration::from_millis(1);
const BG_BACKOFF_MAX: Duration = Duration::from_millis(64);

/// Runs `op`, retrying failures with exponential backoff instead of letting
/// the calling worker thread die on the first error. Gives up early on
/// shutdown and after [`BG_RETRIES`] attempts, returning the last error for
/// the caller to report via [`set_bg_error`].
fn with_bg_retries<T>(inner: &Inner, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut delay = BG_BACKOFF_BASE;
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt >= BG_RETRIES || inner.shutdown.load(Ordering::Acquire) {
                    return Err(e);
                }
                attempt += 1;
                std::thread::sleep(delay);
                delay = (delay * 2).min(BG_BACKOFF_MAX);
            }
        }
    }
}

/// One-piece flush + background swizzle of the immutable MemTable.
fn flush_worker(inner: Arc<Inner>) {
    loop {
        {
            let mut flag = inner.flush_flag.lock();
            while !*flag && !inner.shutdown.load(Ordering::Acquire) {
                inner
                    .flush_cv
                    .wait_for(&mut flag, Duration::from_millis(100));
            }
            *flag = false;
        }
        let imm = inner.mem.read().imm.clone();
        if let Some(imm) = imm {
            // A failed flush is retried with backoff: everything before the
            // level publish is side-effect free on error (the one-piece
            // flush either completes or allocates nothing durable), and a
            // rare post-publish manifest failure at worst re-flushes the
            // same keys into a duplicate table, which reads dedupe and
            // lazy-copy reclaims — never data loss.
            let published = with_bg_retries(&inner, || flush_one(&inner, &imm));
            inner.telemetry.set_flush_span(0);
            {
                let mut mem = inner.mem.write();
                mem.imm = None;
            }
            // Re-store the manifest so it stops referencing the immutable
            // MemTable's WAL *before* those segments are freed — otherwise
            // a crash in between would leave the manifest pointing at
            // recycled regions and recovery would double-free them.
            if let Err(e) = with_bg_retries(&inner, || store_manifest(&inner)) {
                set_bg_error(&inner, format!("manifest store failed: {e}"));
            }
            {
                // Notify under the writer mutex: a rotating writer checks
                // `imm` and then parks on `imm_cv` while holding it, so an
                // unsynchronized notify could land in that gap and be lost
                // (costing the full wait timeout per rotation).
                let _writers = inner.write_mutex.lock();
                inner.imm_cv.notify_all();
            }
            match published {
                Ok(()) => release_memtable_when_unique(imm),
                Err(e) => set_bg_error(&inner, format!("flush failed: {e}")),
            }
        }
        if inner.shutdown.load(Ordering::Acquire) && inner.mem.read().imm.is_none() {
            return;
        }
    }
}

fn flush_one(inner: &Inner, imm: &Arc<MemTable>) -> Result<()> {
    if fault::hit(fault::points::ENGINE_FLUSH).is_some() {
        return Err(Error::Background("injected flush failure".to_string()));
    }
    // Backpressure: respect the elastic-buffer cap (Figure 14) and pool
    // capacity; lazy-copy GC frees space.
    let need = imm.arena().used_bytes();
    let mut throttled_since: Option<Instant> = None;
    loop {
        let used = inner.elastic_bytes.load(Ordering::Relaxed);
        // An empty buffer always accepts one flush, so a cap below the
        // MemTable size degrades to "one table at a time" instead of
        // deadlocking.
        let over_cap = used > 0
            && inner
                .opts
                .elastic_buffer_cap
                .is_some_and(|cap| used + need > cap);
        if !over_cap {
            inner.pressure.store(false, Ordering::Release);
            break;
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::Closed);
        }
        if throttled_since.is_none() {
            throttled_since = Some(Instant::now());
            inner.telemetry.stall_begin(StallKind::Cumulative);
        }
        // Ask the lazy worker to drain ahead of its trigger.
        inner.pressure.store(true, Ordering::Release);
        {
            let _levels = inner.levels.lock();
            inner.level_cv.notify_all();
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    if let Some(since) = throttled_since {
        // Elastic-cap backpressure delays the flush pipeline as a whole —
        // the paper's cumulative (throughput) stall, not an interval stall.
        let waited = since.elapsed();
        Stats::add_time(&inner.stats.cumulative_stall_ns, waited);
        Stats::add(&inner.stats.cumulative_stall_count, 1);
        inner.telemetry.stall_end(StallKind::Cumulative, waited);
    }

    inner.telemetry.flush_begin(need);
    // Publish this flush's span id so a writer stalled on rotation can
    // link the flush it is waiting on (cleared by the flush worker).
    let mut flush_span = trace::bg_span(SpanKind::Flush);
    flush_span.annotate(need);
    inner.telemetry.set_flush_span(flush_span.id());
    let t0 = Instant::now();
    let flushed = loop {
        match one_piece_flush(imm.arena(), &inner.nvm) {
            Ok(f) => break f,
            Err(Error::PoolExhausted { .. }) => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return Err(Error::Closed);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(e) => return Err(e),
        }
    };
    let flush_took = t0.elapsed();
    Stats::add_time(&inner.stats.flush_ns, flush_took);
    Stats::add(&inner.stats.flush_count, 1);
    Stats::add(&inner.stats.flush_bytes, flushed.bytes);
    inner.telemetry.flush_end(flushed.bytes, flush_took);

    // Background pointer swizzling: the immutable MemTable keeps serving
    // reads while this runs.
    let t1 = Instant::now();
    {
        let _swizzle_span = trace::bg_span(SpanKind::Swizzle);
        swizzle(&inner.nvm, &flushed);
    }
    let swizzle_took = t1.elapsed();
    Stats::add_time(&inner.stats.swizzle_ns, swizzle_took);
    inner.telemetry.swizzle(swizzle_took);

    let table = Arc::new(PmTable {
        list: SkipList::from_raw(inner.nvm.clone(), flushed.head),
        arenas: vec![flushed.region],
        bloom: imm.bloom_snapshot(),
        len: flushed.len,
        data_bytes: flushed.data_bytes,
        newest_seq: inner.seq.load(Ordering::Relaxed),
    });
    inner
        .elastic_bytes
        .fetch_add(table.arena_bytes(), Ordering::Relaxed);

    {
        let mut levels = inner.levels.lock();
        levels[0].tables.push_back(table);
        levels[0].bump_version();
        publish_level_gauges(inner, 0, &levels[0]);
        store_manifest_locked(inner, &levels)?;
        inner.level_cv.notify_all();
    }
    Ok(())
}

/// Refreshes the telemetry occupancy gauges for level `i`. Counts match
/// [`KvEngine::report`]: settled tables plus both in-flight merge tables
/// plus a draining table. Callers hold the levels lock.
fn publish_level_gauges(inner: &Inner, i: usize, l: &Level) {
    let mut bytes: u64 = l.tables.iter().map(|t| t.arena_bytes()).sum();
    let mut tables = l.tables.len() as u64;
    if let Some((new_t, old_t)) = &l.merging {
        bytes += new_t.arena_bytes() + old_t.arena_bytes();
        tables += 2;
    }
    if let Some(t) = &l.lazy_draining {
        bytes += t.arena_bytes();
        tables += 1;
    }
    if let Some(m) = inner.telemetry.level(i) {
        m.set_occupancy(bytes, tables);
    }
}

/// Zero-copy compactor for elastic level `i` (pushes into `i + 1`).
fn compactor_worker(inner: Arc<Inner>, i: usize) {
    loop {
        let (new_t, old_t, gate, mark) = {
            let mut levels = inner.levels.lock();
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if levels[i].tables.len() >= 2 {
                    break;
                }
                inner
                    .level_cv
                    .wait_for(&mut levels, Duration::from_millis(100));
            }
            // Invariant: guarded by the `tables.len() >= 2` check above,
            // under the same levels lock.
            let old_t = levels[i].tables.pop_front().unwrap();
            let new_t = levels[i].tables.pop_front().unwrap();
            levels[i].merging = Some((new_t.clone(), old_t.clone()));
            levels[i].bump_version();
            if let Err(e) = store_manifest_locked(&inner, &levels) {
                set_bg_error(&inner, format!("manifest store failed: {e}"));
                return;
            }
            (new_t, old_t, levels[i].gate.clone(), levels[i].mark.clone())
        };
        if !run_one_zero_copy_merge(&inner, i, new_t, old_t, gate, mark) {
            return;
        }
    }
}

/// The parallel-compaction ablation: one thread serves every level in
/// round-robin order, so a busy deep merge blocks upper levels — the
/// coupling the paper's per-level threads remove.
fn serial_compactor_worker(inner: Arc<Inner>) {
    let n = inner.opts.elastic_levels;
    loop {
        let mut worked = false;
        for i in 0..n.saturating_sub(1) {
            let picked = {
                let mut levels = inner.levels.lock();
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if levels[i].tables.len() < 2 {
                    None
                } else {
                    // Invariant: the `>= 2` branch guard holds the lock.
                    let old_t = levels[i].tables.pop_front().unwrap();
                    let new_t = levels[i].tables.pop_front().unwrap();
                    levels[i].merging = Some((new_t.clone(), old_t.clone()));
                    levels[i].bump_version();
                    if let Err(e) = store_manifest_locked(&inner, &levels) {
                        set_bg_error(&inner, format!("manifest store failed: {e}"));
                        return;
                    }
                    Some((new_t, old_t, levels[i].gate.clone(), levels[i].mark.clone()))
                }
            };
            if let Some((new_t, old_t, gate, mark)) = picked {
                if !run_one_zero_copy_merge(&inner, i, new_t, old_t, gate, mark) {
                    return;
                }
                worked = true;
            }
        }
        if !worked {
            let mut levels = inner.levels.lock();
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            inner
                .level_cv
                .wait_for(&mut levels, Duration::from_millis(100));
        }
    }
}

/// Executes one gated zero-copy merge for level `i` and publishes the
/// result to `i + 1`. Returns false if the engine must shut down.
#[must_use]
fn run_one_zero_copy_merge(
    inner: &Arc<Inner>,
    i: usize,
    new_t: Arc<PmTable>,
    old_t: Arc<PmTable>,
    gate: Arc<Mutex<()>>,
    mark: InsertionMark,
) -> bool {
    // A compaction-thread failure is retried with backoff instead of
    // killing the worker. If the budget runs out, `merging` stays set (the
    // manifest already records it), so recovery resumes the merge on the
    // next open — degraded mode here never strands the two tables.
    let admitted = with_bg_retries(inner, || {
        if fault::hit(fault::points::ENGINE_COMPACTION).is_some() {
            return Err(Error::Background("injected compaction failure".to_string()));
        }
        Ok(())
    });
    if let Err(e) = admitted {
        set_bg_error(inner, format!("compaction failed: {e}"));
        return false;
    }
    inner
        .telemetry
        .compaction_begin(i, CompactionKind::ZeroCopy);
    // arg packs the level in the low half, kind (1 = zero-copy) high.
    let mut comp_span = trace::bg_span(SpanKind::Compaction);
    comp_span.annotate(i as u64 | (1 << 32));
    let t0 = Instant::now();
    let mut total = miodb_skiplist::MergeStats::default();
    loop {
        let _g = gate.lock();
        let out = zero_copy_merge(
            &inner.nvm,
            new_t.list.head(),
            old_t.list.head(),
            &mark,
            MergeLimits {
                max_steps: Some(MERGE_STEPS_PER_GATE),
                abandon_after_link_writes: None,
            },
        );
        let s = out.stats();
        total.moved += s.moved;
        total.dropped_new += s.dropped_new;
        total.bypassed_old += s.bypassed_old;
        total.link_writes += s.link_writes;
        if matches!(out, MergeOutcome::Complete(_)) {
            break;
        }
    }
    let took = t0.elapsed();
    Stats::add_time(&inner.stats.zero_copy_compaction_ns, took);
    Stats::add(&inner.stats.zero_copy_compactions, 1);

    let merged = merged_table(
        &inner.nvm,
        &new_t,
        &old_t,
        total,
        inner.opts.bloom_bits_per_key,
    );
    let merged_bytes = merged.data_bytes;
    drop(new_t);
    drop(old_t);
    {
        let mut levels = inner.levels.lock();
        levels[i].merging = None;
        levels[i + 1].tables.push_back(merged);
        levels[i].bump_version();
        levels[i + 1].bump_version();
        publish_level_gauges(inner, i, &levels[i]);
        publish_level_gauges(inner, i + 1, &levels[i + 1]);
        // Emit the End event while still holding the levels lock: once the
        // lock drops with `merging` cleared, `wait_idle` may report the
        // engine idle, and a consumer draining the ring right then must
        // already see this compaction closed.
        inner
            .telemetry
            .compaction_end(i, CompactionKind::ZeroCopy, merged_bytes, took);
        if let Err(e) = store_manifest_locked(inner, &levels) {
            set_bg_error(inner, format!("manifest store failed: {e}"));
            return false;
        }
        inner.level_cv.notify_all();
    }
    true
}

/// Picks a level to pressure-drain: the deepest level holding tables, but
/// only if no in-flight merge could later push *older* data below it —
/// draining its front (oldest) table to the repository then preserves the
/// newer-shadows-older read order.
fn pick_pressure_drain(levels: &[Level]) -> Option<usize> {
    for (i, l) in levels.iter().enumerate().rev() {
        let busy = l.merging.is_some() || l.lazy_draining.is_some();
        if !l.tables.is_empty() {
            return if busy { None } else { Some(i) };
        }
        if busy {
            return None; // wait for the in-flight work at the deepest level
        }
    }
    None
}

/// Lazy-copy worker for the bottom buffer level: drains the oldest PMTable
/// into the repository and reclaims its arenas (the GC point). Under
/// elastic-cap pressure it also drains the globally oldest table early.
fn lazy_worker(inner: Arc<Inner>) {
    let b = inner.opts.elastic_levels - 1;
    loop {
        let (table, level_idx) = {
            let mut levels = inner.levels.lock();
            let picked = loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if levels[b].tables.len() >= inner.opts.lazy_copy_trigger
                    && levels[b].lazy_draining.is_none()
                {
                    break b;
                }
                if inner.pressure.load(Ordering::Acquire) {
                    if let Some(i) = pick_pressure_drain(&levels) {
                        break i;
                    }
                }
                inner
                    .level_cv
                    .wait_for(&mut levels, Duration::from_millis(100));
            };
            // Invariant: both pick paths (`lazy_copy_trigger` check and
            // `pick_pressure_drain`) only select non-empty levels, under
            // this same levels lock.
            let t = levels[picked].tables.pop_front().unwrap();
            levels[picked].lazy_draining = Some(t.clone());
            levels[picked].bump_version();
            if let Err(e) = store_manifest_locked(&inner, &levels) {
                set_bg_error(&inner, format!("manifest store failed: {e}"));
                return;
            }
            (t, picked)
        };
        let table = table;
        let drained_bytes = table.data_bytes;

        inner
            .telemetry
            .compaction_begin(level_idx, CompactionKind::LazyCopy);
        // arg packs the level in the low half, kind (2 = lazy-copy) high.
        let mut comp_span = trace::bg_span(SpanKind::Compaction);
        comp_span.annotate(level_idx as u64 | (2 << 32));
        let t0 = Instant::now();
        let _w = inner.repo_writer.lock();
        // Retried with backoff on failure: each attempt re-reads the intact
        // PMTable and re-applies with the same sequence numbers, so a
        // partially applied earlier attempt is simply overwritten
        // (idempotent) rather than doubled.
        let drained: Result<()> = with_bg_retries(&inner, || {
            if fault::hit(fault::points::ENGINE_LAZY).is_some() {
                return Err(Error::Background("injected lazy-copy failure".to_string()));
            }
            let merged = dedup_newest(table.list.iter(), false);
            match &inner.repo {
                Repository::Pm(_) => {
                    for e in merged {
                        inner.repo.apply(&e.key, &e.value, e.seq, e.kind)?;
                    }
                }
                Repository::Lsm(_) => {
                    let entries: Vec<OwnedEntry> = merged.collect();
                    inner.repo.ingest_run(entries.into_iter())?;
                }
            }
            Ok(())
        });
        if let Err(e) = drained {
            set_bg_error(&inner, format!("lazy-copy failed: {e}"));
            return;
        }
        let took = t0.elapsed();
        Stats::add_time(&inner.stats.copy_compaction_ns, took);
        Stats::add(&inner.stats.copy_compactions, 1);

        {
            let mut levels = inner.levels.lock();
            levels[level_idx].lazy_draining = None;
            levels[level_idx].bump_version();
            publish_level_gauges(&inner, level_idx, &levels[level_idx]);
            // Under the levels lock for the same reason as the zero-copy
            // merge: `wait_idle` must not observe idle before the End
            // event is in the ring.
            inner.telemetry.compaction_end(
                level_idx,
                CompactionKind::LazyCopy,
                drained_bytes,
                took,
            );
            if let Err(e) = store_manifest_locked(&inner, &levels) {
                set_bg_error(&inner, format!("manifest store failed: {e}"));
                return;
            }
            inner.level_cv.notify_all();
        }

        // GC: free the drained table's arenas once no reader holds it.
        let mut arc = table;
        loop {
            match Arc::try_unwrap(arc) {
                Ok(t) => {
                    inner
                        .elastic_bytes
                        .fetch_sub(t.arena_bytes(), Ordering::Relaxed);
                    t.release(&inner.nvm);
                    break;
                }
                Err(back) => {
                    arc = back;
                    if inner.shutdown.load(Ordering::Acquire) {
                        return; // leak rather than free under readers
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

/// Builds the engine report (shared by [`KvEngine::report`] and the
/// periodic reporter thread, which only holds the `Inner`).
fn build_report(inner: &Inner) -> EngineReport {
    let mut tables: Vec<usize> = {
        let levels = inner.levels.lock();
        levels
            .iter()
            .map(|l| {
                l.tables.len()
                    + l.merging.as_ref().map_or(0, |_| 2)
                    + l.lazy_draining.as_ref().map_or(0, |_| 1)
            })
            .collect()
    };
    tables.extend(inner.repo.tables_per_level());
    EngineReport {
        name: inner.opts.name.clone(),
        nvm_used_bytes: inner.nvm.used_bytes(),
        nvm_peak_bytes: inner.nvm.peak_bytes(),
        tables_per_level: tables,
        stats: inner.stats.snapshot(),
    }
}

/// Prints the Prometheus rendering to stderr every `interval`
/// (`TelemetryOptions::report_interval`). Polls shutdown at a short period
/// so `Drop` joins promptly even for long intervals.
fn reporter_worker(inner: Arc<Inner>, interval: Duration) {
    let tick = interval.min(Duration::from_millis(20));
    let mut next = Instant::now() + interval;
    while !inner.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        if Instant::now() < next {
            continue;
        }
        next = Instant::now() + interval;
        let report = build_report(&inner);
        let text = miodb_common::metrics::engine_registry(&report, Some(&inner.telemetry))
            .render_prometheus();
        eprintln!("{text}");
    }
}

/// Background compaction of the on-SSD LSM repository (SSD mode).
fn repo_worker(inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match with_bg_retries(&inner, || inner.repo.maintain()) {
            Ok(true) => continue,
            Ok(false) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => {
                set_bg_error(&inner, format!("repository compaction failed: {e}"));
                return;
            }
        }
    }
}

fn release_memtable_when_unique(mut arc: Arc<MemTable>) {
    for _ in 0..10_000 {
        match Arc::try_unwrap(arc) {
            Ok(m) => {
                m.release();
                return;
            }
            Err(back) => {
                arc = back;
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

impl KvEngine for MioDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, OpKind::Put)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", OpKind::Delete)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let t0 = Instant::now();
        let r = self.get_impl(key);
        if r.is_ok() {
            self.inner
                .telemetry
                .get_latency
                .record(dur_ns(t0.elapsed()));
        }
        r
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let t0 = Instant::now();
        let r = self.scan_impl(start, limit);
        if r.is_ok() {
            self.inner
                .telemetry
                .scan_latency
                .record(dur_ns(t0.elapsed()));
        }
        r
    }

    fn wait_idle(&self) -> Result<()> {
        let inner = &*self.inner;
        loop {
            self.check_usable()?;
            let mem_busy = inner.mem.read().imm.is_some();
            let levels_busy = {
                let levels = inner.levels.lock();
                let n = levels.len();
                levels.iter().enumerate().any(|(i, l)| {
                    l.merging.is_some()
                        || l.lazy_draining.is_some()
                        || (i + 1 < n && l.tables.len() >= 2)
                        || (i + 1 == n && l.tables.len() >= inner.opts.lazy_copy_trigger)
                })
            };
            if !mem_busy && !levels_busy && inner.repo.is_quiescent() {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn report(&self) -> EngineReport {
        build_report(&self.inner)
    }

    fn name(&self) -> &str {
        &self.inner.opts.name
    }

    fn telemetry(&self) -> Option<&EngineTelemetry> {
        Some(&self.inner.telemetry)
    }
}

impl MioDb {
    /// The `get` visibility walk; [`KvEngine::get`] wraps it with latency
    /// recording.
    fn get_impl(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let inner = &*self.inner;
        Stats::add(&inner.stats.gets, 1);

        // 1. DRAM MemTables.
        let (active, imm) = {
            let mem = inner.mem.read();
            (mem.active.clone(), mem.imm.clone())
        };
        {
            let _probe_span = trace::span(SpanKind::MemtableProbe);
            if let Some(r) = active.list().get(key) {
                Stats::add(&inner.stats.get_hits, 1);
                return Ok(Self::resolve(r));
            }
            if let Some(imm) = imm {
                if let Some(r) = imm.list().get(key) {
                    Stats::add(&inner.stats.get_hits, 1);
                    return Ok(Self::resolve(r));
                }
            }
        }

        // 2. Elastic buffer, level by level, newest table first, following
        //    the paper's merge-visibility protocol. Each level's state is
        //    snapshotted once; a settled table probed through the plain
        //    (non-mark-aware) path may be popped into `merging` and
        //    re-linked *while we search it*, silently bypassing the
        //    newtable→mark→oldtable protocol below. Misses therefore
        //    re-check the level's structural version and retry the level
        //    on change — a retry that races the pop sees `merging = Some`
        //    and takes the protected path. Bounded: a level can only
        //    transition a handful of times while one probe runs; the cap
        //    merely keeps a pathological schedule from livelocking, and on
        //    exhaustion we fall through (no worse than the unversioned
        //    probe).
        const LEVEL_PROBE_RETRIES: u32 = 64;
        let n = inner.opts.elastic_levels;
        for i in 0..n {
            let mut level_span = trace::span(SpanKind::LevelProbe);
            level_span.annotate(i as u64);
            'probe: for _ in 0..LEVEL_PROBE_RETRIES {
                let (tables, merging, lazy, mark, gate, version) = {
                    let levels = inner.levels.lock();
                    (
                        levels[i].tables.iter().cloned().collect::<Vec<_>>(),
                        levels[i].merging.clone(),
                        levels[i].lazy_draining.clone(),
                        levels[i].mark.clone(),
                        levels[i].gate.clone(),
                        levels[i].version.clone(),
                    )
                };
                let seen = version.load(Ordering::Acquire);
                for t in tables.iter().rev() {
                    if inner.opts.bloom_enabled && !t.bloom.may_contain(key) {
                        Stats::add(&inner.stats.bloom_skips, 1);
                        inner.telemetry.bloom_skip(i);
                        trace::instant(SpanKind::BloomSkip, i as u64);
                        continue;
                    }
                    if let Some(r) = t.list.get(key) {
                        Stats::add(&inner.stats.get_hits, 1);
                        return Ok(Self::resolve(r));
                    }
                    Stats::add(&inner.stats.bloom_false_positives, 1);
                }
                if let Some((new_t, old_t)) = merging {
                    // newtable -> insertion mark -> oldtable (§4.3). The
                    // newtable search skips the in-flight node (Case 2): a
                    // traversal crossing it mid-splice would follow rewritten
                    // pointers into the oldtable and miss newtable entries.
                    let hit = if !inner.opts.bloom_enabled
                        || new_t.bloom.may_contain(key)
                        || old_t.bloom.may_contain(key)
                    {
                        let optimistic = miodb_skiplist::get_skip_marked(&new_t.list, key, &mark)
                            .or_else(|| mark.read(key))
                            .or_else(|| old_t.list.get(key));
                        match optimistic {
                            Some(r) => Some(r),
                            None => {
                                // Rare revalidation: a reader preempted while
                                // standing on a node that a whole merge step
                                // then moved can compute a false miss that no
                                // optimistic check can detect (ABA). Under the
                                // level gate the merge is at a step boundary
                                // (mark clear, lists well-formed), so plain
                                // searches are exact.
                                let _quiesce = gate.lock();
                                new_t
                                    .list
                                    .get(key)
                                    .or_else(|| mark.read(key))
                                    .or_else(|| old_t.list.get(key))
                            }
                        }
                    } else {
                        Stats::add(&inner.stats.bloom_skips, 1);
                        inner.telemetry.bloom_skip(i);
                        trace::instant(SpanKind::BloomSkip, i as u64);
                        mark.read(key)
                    };
                    if let Some(r) = hit {
                        Stats::add(&inner.stats.get_hits, 1);
                        return Ok(Self::resolve(r));
                    }
                }
                if let Some(t) = lazy {
                    if !inner.opts.bloom_enabled || t.bloom.may_contain(key) {
                        if let Some(r) = t.list.get(key) {
                            Stats::add(&inner.stats.get_hits, 1);
                            return Ok(Self::resolve(r));
                        }
                    }
                }
                if version.load(Ordering::Acquire) == seen {
                    break 'probe;
                }
                Stats::add(&inner.stats.level_probe_retries, 1);
            }
        }

        // 3. Data repository.
        let _repo_span = trace::span(SpanKind::RepoProbe);
        if let Some(r) = inner.repo.get(key)? {
            if r.kind == OpKind::Put {
                Stats::add(&inner.stats.get_hits, 1);
                return Ok(Some(r.value));
            }
        }
        Ok(None)
    }

    /// The `scan` source assembly and k-way merge; [`KvEngine::scan`]
    /// wraps it with latency recording.
    fn scan_impl(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let inner = &*self.inner;
        let (active, imm) = {
            let mem = inner.mem.read();
            (mem.active.clone(), mem.imm.clone())
        };

        // Pause zero-copy pointer motion on every level while iterators
        // run (gates are re-acquired by compactors every
        // MERGE_STEPS_PER_GATE steps, bounding our wait).
        let gates: Vec<Arc<Mutex<()>>> = {
            let levels = inner.levels.lock();
            levels.iter().map(|l| l.gate.clone()).collect()
        };
        let _guards: Vec<_> = gates.iter().map(|g| g.lock()).collect();

        let mut sources: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> = Vec::new();
        sources.push(Box::new(active.list().iter_from(start)));
        if let Some(imm) = imm {
            sources.push(Box::new(imm.list().iter_from(start)));
        }
        {
            let levels = inner.levels.lock();
            for l in levels.iter() {
                for t in l.tables.iter().rev() {
                    sources.push(Box::new(t.list.iter_from(start)));
                }
                if let Some((new_t, old_t)) = &l.merging {
                    sources.push(Box::new(new_t.list.iter_from(start)));
                    if let Some(e) = l.mark.load().map(|_| ()).and_then(|()| {
                        // Materialize the in-flight node as a one-entry source.
                        mark_entry(&l.mark)
                    }) {
                        if e.key.as_slice() >= start {
                            sources.push(Box::new(std::iter::once(e)));
                        }
                    }
                    sources.push(Box::new(old_t.list.iter_from(start)));
                }
                if let Some(t) = &l.lazy_draining {
                    sources.push(Box::new(t.list.iter_from(start)));
                }
            }
        }
        sources.extend(inner.repo.scan_sources(start));

        let merged = dedup_newest(KWayMerge::new(sources), true);
        Ok(merged
            .take(limit)
            .map(|e| ScanEntry {
                key: e.key,
                value: e.value,
            })
            .collect())
    }
}

/// MemTable capacity guaranteed to accept the entry being written.
fn min_capacity(key: &[u8], value: &[u8]) -> usize {
    miodb_skiplist::SkipListArena::capacity_for_entry(key.len(), value.len())
}

/// Saturating nanosecond count of a duration, for histogram recording.
fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// An atomic multi-operation write (LevelDB-style `WriteBatch`).
///
/// All operations of a batch are framed as a **single WAL record**, so
/// after a crash either every operation replays or none does; they receive
/// consecutive sequence numbers and land in one MemTable. (Readers without
/// snapshots may still observe a batch mid-application — durability is
/// atomic, isolation follows the paper's snapshot-less read model.)
///
/// # Examples
///
/// ```
/// use miodb_core::{MioDb, MioOptions, WriteBatch};
/// use miodb_common::KvEngine;
///
/// # fn main() -> miodb_common::Result<()> {
/// let db = MioDb::open(MioOptions::small_for_tests())?;
/// let mut batch = WriteBatch::new();
/// batch.put(b"a", b"1");
/// batch.put(b"b", b"2");
/// batch.delete(b"stale");
/// db.write_batch(batch)?;
/// assert_eq!(db.get(b"a")?.as_deref(), Some(&b"1"[..]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct WriteBatch {
    ops: Vec<(Vec<u8>, Vec<u8>, OpKind)>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Queues an insert/overwrite.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> &mut WriteBatch {
        self.ops.push((key.to_vec(), value.to_vec(), OpKind::Put));
        self
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: &[u8]) -> &mut WriteBatch {
        self.ops.push((key.to_vec(), Vec::new(), OpKind::Delete));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drops all queued operations.
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

impl MioDb {
    /// Applies a [`WriteBatch`]: one WAL record, consecutive sequence
    /// numbers, all operations in one MemTable (rotating to a large-enough
    /// MemTable first if needed).
    ///
    /// # Errors
    ///
    /// Returns the usual write-path failures; on error, nothing from the
    /// batch was logged.
    pub fn write_batch(&self, batch: WriteBatch) -> Result<()> {
        if batch.ops.is_empty() {
            return Ok(());
        }
        self.check_usable()?;
        let inner = &*self.inner;
        if inner.opts.write_pipeline {
            for (k, v, _) in &batch.ops {
                if k.len() > u32::MAX as usize || v.len() > u32::MAX as usize {
                    return Err(Error::InvalidArgument("key/value too large".to_string()));
                }
            }
            // Uncontended bypass, as in `write`: no queue, mutex free —
            // the legacy batch protocol is strictly cheaper.
            if inner.commit.queue.lock().is_empty() {
                if let Some(guard) = inner.write_mutex.try_lock() {
                    inner
                        .telemetry
                        .write_group_size
                        .record(batch.ops.len() as u64);
                    return self.write_batch_locked(guard, &batch.ops);
                }
            }
            // A group record is all-or-nothing on replay — at least as
            // strong as the legacy per-batch atomicity.
            return self.write_grouped(batch.ops);
        }
        let guard = inner.write_mutex.lock();
        self.write_batch_locked(guard, &batch.ops)
    }

    /// Applies a batch under an already-held writer mutex: one WAL record,
    /// consecutive sequence numbers, rotating until the batch fits.
    fn write_batch_locked(
        &self,
        mut guard: parking_lot::MutexGuard<'_, ()>,
        ops: &[(Vec<u8>, Vec<u8>, OpKind)],
    ) -> Result<()> {
        let inner = &*self.inner;
        let user_bytes: u64 = ops.iter().map(|(k, v, _)| (k.len() + v.len()) as u64).sum();
        Stats::add(&inner.stats.user_bytes_written, user_bytes);
        let n = ops.len() as u64;
        let seq_base = inner.seq.fetch_add(n, Ordering::Relaxed) + 1;
        let need: usize = ops
            .iter()
            .map(|(k, v, _)| miodb_skiplist::node_size_upper(k.len(), v.len()) as usize)
            .sum::<usize>()
            + 4096;
        loop {
            let r = {
                let active = inner.mem.read().active.clone();
                active.insert_batch(ops, seq_base)
            };
            match r {
                Ok(()) => {
                    if inner.repl_armed.load(Ordering::Acquire) {
                        let gops: Vec<miodb_wal::GroupOp<'_>> = ops
                            .iter()
                            .map(|(key, value, kind)| miodb_wal::GroupOp {
                                key,
                                value,
                                kind: *kind,
                            })
                            .collect();
                        if let Ok(bytes) = miodb_wal::encode_group_record(&gops, seq_base) {
                            self.repl_publish(&bytes, seq_base, seq_base + n - 1);
                        }
                        drop(guard);
                        return self.repl_wait(seq_base + n - 1);
                    }
                    return Ok(());
                }
                Err(Error::ArenaFull) => {
                    self.rotate_memtable(Some(&mut guard), need)?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Materializes the insertion mark's node, if any, as an owned entry.
fn mark_entry(mark: &InsertionMark) -> Option<OwnedEntry> {
    let (_node, _) = mark.load()?;
    // Reading via the mark's own lookup keeps all unsafe access inside the
    // skiplist crate; the key is unknown, so expose it via the raw load.
    mark.entry()
}

impl Drop for MioDb {
    fn drop(&mut self) {
        // The same graceful drain as `close`: flush in-flight commit
        // groups and the active MemTable so even a drop-only shutdown
        // leaves nothing that depends on WAL replay. Errors are ignored —
        // the fallthrough still stops and joins every worker.
        let _ = self.close();
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.flush_cv.notify_all();
        self.inner.imm_cv.notify_all();
        self.inner.level_cv.notify_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> MioDb {
        MioDb::open(MioOptions::small_for_tests()).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let d = db();
        d.put(b"k", b"v").unwrap();
        assert_eq!(d.get(b"k").unwrap().unwrap(), b"v");
        d.delete(b"k").unwrap();
        assert!(d.get(b"k").unwrap().is_none());
        assert!(d.get(b"missing").unwrap().is_none());
    }

    #[test]
    fn overwrites_return_newest() {
        let d = db();
        for i in 0..10u32 {
            d.put(b"key", format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(d.get(b"key").unwrap().unwrap(), b"v9");
    }

    #[test]
    fn data_flows_through_all_levels() {
        let d = db();
        let value = vec![42u8; 256];
        for i in 0..4000u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        let report = d.report();
        assert!(report.stats.flush_count > 1, "several flushes expected");
        assert!(
            report.stats.zero_copy_compactions > 0,
            "zero-copy merges expected"
        );
        assert!(report.stats.copy_compactions > 0, "lazy-copy expected");
        for i in (0..4000u32).step_by(191) {
            assert_eq!(
                d.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
                value,
                "key{i:06}"
            );
        }
    }

    #[test]
    fn wa_stays_near_paper_bound() {
        // Zero-copy compaction means the only NVM rewrites are the WAL, the
        // one-piece flush and the lazy copy: WA should stay around ~3
        // (paper Figure 11: 2.9x, theoretical bound 3).
        let d = db();
        let value = vec![7u8; 512];
        for i in 0..6000u32 {
            d.put(format!("key{:06}", i % 1500).as_bytes(), &value)
                .unwrap();
        }
        d.wait_idle().unwrap();
        let wa = d.report().stats.write_amplification;
        assert!(wa > 1.0, "wa = {wa}");
        assert!(wa < 4.5, "zero-copy compaction must bound WA, got {wa}");
    }

    #[test]
    fn deletes_survive_compaction() {
        let d = db();
        let value = vec![1u8; 256];
        for i in 0..1000u32 {
            d.put(format!("key{i:05}").as_bytes(), &value).unwrap();
        }
        for i in (0..1000u32).step_by(2) {
            d.delete(format!("key{i:05}").as_bytes()).unwrap();
        }
        d.wait_idle().unwrap();
        for i in 0..1000u32 {
            let got = d.get(format!("key{i:05}").as_bytes()).unwrap();
            if i % 2 == 0 {
                assert!(got.is_none(), "key{i:05} should be deleted");
            } else {
                assert_eq!(got.unwrap(), value, "key{i:05} should live");
            }
        }
    }

    #[test]
    fn scan_is_sorted_and_deduped() {
        let d = db();
        let value = vec![9u8; 200];
        for i in 0..2000u32 {
            d.put(format!("key{i:05}").as_bytes(), &value).unwrap();
        }
        // Overwrite some keys and delete others while compaction runs.
        for i in (0..2000u32).step_by(3) {
            d.put(format!("key{i:05}").as_bytes(), b"fresh").unwrap();
        }
        for i in (1..2000u32).step_by(100) {
            d.delete(format!("key{i:05}").as_bytes()).unwrap();
        }
        let out = d.scan(b"key00500", 50).unwrap();
        assert!(!out.is_empty());
        for w in out.windows(2) {
            assert!(w[0].key < w[1].key, "scan must be sorted");
        }
        for e in &out {
            let direct = d.get(&e.key).unwrap().expect("scan returned dead key");
            assert_eq!(
                direct,
                e.value,
                "scan/get disagree on {:?}",
                String::from_utf8_lossy(&e.key)
            );
        }
    }

    #[test]
    fn memtable_pressure_has_no_interval_stalls() {
        // MioDB's headline property: flushing is one memcpy, so even write
        // bursts should not produce interval stalls.
        let d = db();
        let value = vec![5u8; 1024];
        for i in 0..3000u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        let snap = d.report().stats;
        // One-piece flushing keeps rotation nearly free: any residual
        // interval stalls must be negligible (the paper's Table 1 shows 0s
        // vs minutes for the baselines).
        assert!(
            snap.interval_stall_ns < 100_000_000,
            "interval stalls too large: {snap:?}"
        );
        assert!(
            snap.serialization_ns == 0,
            "MioDB never serializes into NVM"
        );
    }

    #[test]
    fn elastic_cap_applies_backpressure() {
        let opts = MioOptions {
            elastic_buffer_cap: Some(256 * 1024),
            ..MioOptions::small_for_tests()
        };
        let d = MioDb::open(opts).unwrap();
        let value = vec![3u8; 512];
        for i in 0..3000u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        for i in (0..3000u32).step_by(307) {
            assert!(d.get(format!("key{i:06}").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn reads_concurrent_with_writes() {
        let d = Arc::new(db());
        let value = vec![8u8; 300];
        std::thread::scope(|s| {
            let writer = {
                let d = d.clone();
                let value = value.clone();
                s.spawn(move || {
                    for i in 0..3000u32 {
                        d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
                    }
                })
            };
            for t in 0..3 {
                let d = d.clone();
                let value = value.clone();
                s.spawn(move || {
                    for i in (t..2000u32).step_by(7) {
                        if let Some(v) = d.get(format!("key{i:06}").as_bytes()).unwrap() {
                            assert_eq!(v, value);
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        d.wait_idle().unwrap();
        assert_eq!(d.get(b"key002999").unwrap().unwrap(), value);
    }

    #[test]
    fn ssd_mode_round_trip() {
        let opts = MioOptions {
            repository: RepositoryMode::Ssd {
                lsm: miodb_lsm::LsmOptions {
                    table_bytes: 32 * 1024,
                    level1_max_bytes: 128 * 1024,
                    ..miodb_lsm::LsmOptions::default()
                },
                device: DeviceModel::ssd_unthrottled(),
            },
            elastic_levels: 3,
            ..MioOptions::small_for_tests()
        };
        let d = MioDb::open(opts).unwrap();
        let value = vec![6u8; 400];
        for i in 0..2000u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        let snap = d.report().stats;
        assert!(snap.ssd_bytes_written > 0, "repository must hit the SSD");
        for i in (0..2000u32).step_by(173) {
            assert_eq!(
                d.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
                value
            );
        }
    }

    #[test]
    fn report_shape() {
        let d = db();
        d.put(b"k", b"v").unwrap();
        let r = d.report();
        assert_eq!(r.name, "MioDB");
        assert_eq!(r.tables_per_level.len(), 4);
        assert!(r.nvm_used_bytes > 0);
    }
}
