//! Engine configuration.

use miodb_common::TelemetryOptions;
use miodb_lsm::LsmOptions;
use miodb_pmem::DeviceModel;

/// Where the bottom-level data repository lives.
#[derive(Debug, Clone)]
pub enum RepositoryMode {
    /// DRAM-NVM mode: a huge persistent skip list in the NVM pool
    /// (the paper's primary configuration).
    HugePmTable,
    /// DRAM-NVM-SSD mode: a traditional SSTable LSM on an SSD-class device
    /// (§4.1, evaluated in §5.4).
    Ssd {
        /// Hierarchy configuration for the on-SSD LSM.
        lsm: LsmOptions,
        /// SSD device model.
        device: DeviceModel,
    },
}

/// MioDB configuration.
///
/// Defaults mirror the paper's setup scaled by the dataset scale factor:
/// 64 MB MemTables → 2 MB, 8 elastic-buffer levels, 16 bloom bits per key.
#[derive(Debug, Clone)]
pub struct MioOptions {
    /// DRAM MemTable capacity (also the one-piece flush unit).
    pub memtable_bytes: usize,
    /// Number of elastic-buffer levels (`n`); one compactor thread per
    /// level. The bottom buffer level feeds the repository via lazy-copy.
    pub elastic_levels: usize,
    /// Bloom filter density for PMTables (paper: 16).
    pub bloom_bits_per_key: usize,
    /// Capacity of the NVM pool.
    pub nvm_pool_bytes: usize,
    /// Capacity of the DRAM pool backing MemTable arenas.
    pub dram_pool_bytes: usize,
    /// NVM device timing model.
    pub nvm_device: DeviceModel,
    /// Optional cap on elastic-buffer bytes (Figure 14's "NVM buffer
    /// size"); `None` means bounded only by the pool.
    pub elastic_buffer_cap: Option<u64>,
    /// WAL segment size.
    pub wal_segment_bytes: usize,
    /// Chunk size of the huge-PMTable repository.
    pub repo_chunk_bytes: usize,
    /// Number of PMTables in the bottom buffer level that triggers a
    /// lazy-copy compaction.
    pub lazy_copy_trigger: usize,
    /// Repository placement.
    pub repository: RepositoryMode,
    /// Attach mergeable bloom filters to PMTables (§4.6). Disabling them
    /// is the read-optimization ablation: every lookup probes every table.
    pub bloom_enabled: bool,
    /// One compactor thread per level (§4.5). Disabling runs a single
    /// thread that serves all levels round-robin — the parallel-compaction
    /// ablation (Figure 9's mechanism).
    pub parallel_compaction: bool,
    /// Group-commit write pipeline: concurrent writers enqueue on a commit
    /// queue, a leader coalesces the queue into one WAL record, and group
    /// members insert into the MemTable in parallel (CAS skip-list
    /// splicing). Disabling falls back to the legacy single-writer path
    /// where every put serializes on the writer mutex.
    pub write_pipeline: bool,
    /// Engine name for reports.
    pub name: String,
    /// Telemetry collectors: op-latency histograms, per-level metrics,
    /// structured event tracing and the optional periodic reporter thread.
    pub telemetry: TelemetryOptions,
}

impl Default for MioOptions {
    fn default() -> MioOptions {
        MioOptions {
            memtable_bytes: 2 << 20,
            elastic_levels: 8,
            bloom_bits_per_key: 16,
            nvm_pool_bytes: 512 << 20,
            dram_pool_bytes: 24 << 20,
            nvm_device: DeviceModel::nvm(),
            elastic_buffer_cap: None,
            wal_segment_bytes: 1 << 20,
            repo_chunk_bytes: 4 << 20,
            lazy_copy_trigger: 2,
            repository: RepositoryMode::HugePmTable,
            bloom_enabled: true,
            parallel_compaction: true,
            write_pipeline: true,
            name: "MioDB".to_string(),
            telemetry: TelemetryOptions::default(),
        }
    }
}

impl MioOptions {
    /// A small, unthrottled configuration for unit tests: 64 KiB
    /// MemTables, 4 levels, 32 MiB pool, no injected device delays.
    pub fn small_for_tests() -> MioOptions {
        MioOptions {
            memtable_bytes: 64 * 1024,
            elastic_levels: 4,
            nvm_pool_bytes: 64 << 20,
            dram_pool_bytes: 4 << 20,
            nvm_device: DeviceModel::nvm_unthrottled(),
            wal_segment_bytes: 64 * 1024,
            repo_chunk_bytes: 256 * 1024,
            ..MioOptions::default()
        }
    }

    /// Keys a PMTable bloom filter is sized for: enough for the deepest
    /// merged table of the elastic buffer (a bottom-buffer table is up to
    /// `2^(levels-1)` merged MemTables), so OR-merged filters stay useful
    /// (§4.6). Capped to bound DRAM use; past the cap the false-positive
    /// rate degrades — the paper's Figure 9 trade-off at extreme depths.
    pub fn bloom_expected_keys(&self) -> usize {
        let per_memtable = (self.memtable_bytes / 256).max(64);
        per_memtable
            .saturating_mul(1usize << (self.elastic_levels.min(16).saturating_sub(1)))
            .min(1_000_000)
    }

    /// Derives the options for shard `index` of `count` when the keyspace
    /// is hash-partitioned across independent engines (the network
    /// service layer's `ShardRouter`): pools shrink proportionally (with
    /// floors that keep [`MioOptions::validate`] happy) and the engine
    /// name gains a shard suffix so reports and metrics stay
    /// distinguishable.
    pub fn shard(&self, index: usize, count: usize) -> MioOptions {
        let count = count.max(1);
        MioOptions {
            nvm_pool_bytes: (self.nvm_pool_bytes / count).max(self.memtable_bytes * 4),
            dram_pool_bytes: (self.dram_pool_bytes / count).max(self.memtable_bytes * 2),
            name: format!("{}-shard{index}", self.name),
            ..self.clone()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`miodb_common::Error::InvalidArgument`] for impossible
    /// combinations (zero levels, pools smaller than a MemTable, ...).
    pub fn validate(&self) -> miodb_common::Result<()> {
        if self.elastic_levels == 0 {
            return Err(miodb_common::Error::InvalidArgument(
                "need at least one elastic level".to_string(),
            ));
        }
        if self.dram_pool_bytes < self.memtable_bytes * 2 {
            return Err(miodb_common::Error::InvalidArgument(
                "dram pool must fit at least two memtables".to_string(),
            ));
        }
        if self.nvm_pool_bytes < self.memtable_bytes * 4 {
            return Err(miodb_common::Error::InvalidArgument(
                "nvm pool must fit several flushed memtables".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        MioOptions::default().validate().unwrap();
        MioOptions::small_for_tests().validate().unwrap();
    }

    #[test]
    fn zero_levels_rejected() {
        let opts = MioOptions {
            elastic_levels: 0,
            ..MioOptions::small_for_tests()
        };
        assert!(opts.validate().is_err());
    }

    #[test]
    fn tiny_pools_rejected() {
        let opts = MioOptions {
            dram_pool_bytes: 1024,
            ..MioOptions::small_for_tests()
        };
        assert!(opts.validate().is_err());
        let opts = MioOptions {
            nvm_pool_bytes: 1024,
            ..MioOptions::small_for_tests()
        };
        assert!(opts.validate().is_err());
    }
}
