//! Crash-consistent engine metadata in the NVM pool.
//!
//! The manifest names everything recovery needs (paper §4.7): WAL segments
//! of the active and immutable MemTables, every level's PMTables (head
//! offset + arena set), in-flight zero-copy merges and their insertion
//! marks, an in-flight lazy-copy drain, and the repository's skip-list
//! state.
//!
//! Commit protocol: the serialized state is written to a fresh NVM region,
//! then one of two fixed header slots is updated (version, region, length,
//! CRC). Readers pick the valid slot with the higher version, so a crash
//! mid-store falls back to the previous state. The superseded region is
//! freed after the new slot is in place.

use std::sync::Arc;

use miodb_common::{Error, Result};
use miodb_pmem::{PmemPool, PmemRegion};
use parking_lot::Mutex;

const SLOT_BYTES: u64 = 64;
const SLOT0: u64 = 0;
const SLOT1: u64 = SLOT_BYTES;

/// Persistent descriptor of one PMTable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableState {
    /// Head node offset in the NVM pool.
    pub head: u64,
    /// Approximate node count.
    pub len: u64,
    /// Approximate user bytes.
    pub data_bytes: u64,
    /// Largest sequence number contained.
    pub newest_seq: u64,
    /// Arenas owned by the table.
    pub arenas: Vec<PmemRegion>,
}

/// Persistent descriptor of one elastic-buffer level.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LevelState {
    /// Insertion-mark slot of the level.
    pub mark: Option<PmemRegion>,
    /// In-flight zero-copy merge `(newtable, oldtable)`.
    pub merging: Option<(TableState, TableState)>,
    /// In-flight lazy-copy drain (bottom buffer level only).
    pub lazy_draining: Option<TableState>,
    /// Settled tables, oldest first.
    pub tables: Vec<TableState>,
}

/// Persistent descriptor of the huge-PMTable repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoState {
    pub head: u64,
    pub chunk_size: u64,
    pub cursor: u64,
    pub end: u64,
    pub len: u64,
    pub data_bytes: u64,
    pub chunks: Vec<PmemRegion>,
}

/// The full recoverable engine state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ManifestState {
    /// Last sequence number issued at store time.
    pub seq: u64,
    /// WAL segments of the active MemTable.
    pub active_wal: Vec<PmemRegion>,
    /// WAL segments of the immutable MemTable, if one exists.
    pub imm_wal: Option<Vec<PmemRegion>>,
    /// Elastic-buffer levels, top first.
    pub levels: Vec<LevelState>,
    /// Huge-PMTable repository (absent in SSD mode, whose table store is
    /// outside the pool).
    pub repo: Option<RepoState>,
}

/// Writer/reader of the double-slot manifest.
pub struct Manifest {
    pool: Arc<PmemPool>,
    inner: Mutex<ManifestInner>,
}

struct ManifestInner {
    version: u64,
    /// Regions currently referenced by the two slots.
    regions: [Option<PmemRegion>; 2],
}

impl std::fmt::Debug for Manifest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manifest")
            .field("version", &self.inner.lock().version)
            .finish()
    }
}

impl Manifest {
    /// Creates a manifest writer for a fresh pool (slots zeroed by pool
    /// initialization).
    pub fn create(pool: Arc<PmemPool>) -> Manifest {
        Manifest {
            pool,
            inner: Mutex::new(ManifestInner {
                version: 0,
                regions: [None, None],
            }),
        }
    }

    /// Serializes and commits `state`.
    ///
    /// # Errors
    ///
    /// Returns pool-exhaustion errors; the previous manifest stays intact
    /// in that case.
    pub fn store(&self, state: &ManifestState) -> Result<()> {
        let payload = encode(state);
        let region = self.pool.alloc(payload.len().max(64))?;
        self.pool.write_bytes(region.offset, &payload);

        let mut inner = self.inner.lock();
        let slot_idx = (inner.version % 2) as usize; // alternate slots
        let slot_off = if slot_idx == 0 { SLOT0 } else { SLOT1 };
        let version = inner.version + 1;
        let mut slot = [0u8; SLOT_BYTES as usize];
        slot[0..8].copy_from_slice(&version.to_le_bytes());
        slot[8..16].copy_from_slice(&region.offset.to_le_bytes());
        slot[16..24].copy_from_slice(&region.len.to_le_bytes());
        slot[24..32].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        // The CRC covers the header fields too: a torn version or offset
        // would otherwise resurrect a superseded manifest whose regions the
        // newer commit already recycled.
        let crc = slot_crc(&slot, &payload);
        slot[32..36].copy_from_slice(&crc.to_le_bytes());
        self.pool.write_bytes(slot_off, &slot);

        if let Some(old) = inner.regions[slot_idx].take() {
            self.pool.free(old);
        }
        inner.regions[slot_idx] = Some(region);
        inner.version = version;
        Ok(())
    }

    /// Loads the newest valid state from a (restored) pool, along with a
    /// manifest writer that continues the version sequence.
    ///
    /// Returns `Ok(None)` if no manifest was ever committed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if both slots are unreadable but
    /// non-zero.
    pub fn load(pool: Arc<PmemPool>) -> Result<(Manifest, Option<ManifestState>)> {
        let mut candidates = Vec::new();
        let mut regions = [None, None];
        for (idx, slot_off) in [(0usize, SLOT0), (1usize, SLOT1)] {
            let mut slot = [0u8; SLOT_BYTES as usize];
            pool.read_bytes(slot_off, &mut slot);
            // Invariant: every `try_into` below slices a fixed-size range
            // out of the 64-byte `slot` array — the conversions cannot
            // fail, only the *decoded values* are untrusted (checked next).
            let version = u64::from_le_bytes(slot[0..8].try_into().unwrap());
            if version == 0 {
                continue;
            }
            let off = u64::from_le_bytes(slot[8..16].try_into().unwrap());
            let region_len = u64::from_le_bytes(slot[16..24].try_into().unwrap());
            let payload_len = u64::from_le_bytes(slot[24..32].try_into().unwrap()) as usize;
            let stored_crc = u32::from_le_bytes(slot[32..36].try_into().unwrap());
            // Overflow-safe: a torn slot can hold arbitrary offset/length
            // values, so `off + region_len` must not be allowed to wrap.
            let in_bounds = off
                .checked_add(region_len)
                .is_some_and(|end| end <= pool.capacity() as u64);
            if payload_len as u64 > region_len || !in_bounds {
                continue;
            }
            let mut payload = vec![0u8; payload_len];
            pool.read_bytes(off, &mut payload);
            if slot_crc(&slot, &payload) != stored_crc {
                continue;
            }
            let region = PmemRegion {
                offset: off,
                len: region_len,
            };
            regions[idx] = Some(region);
            candidates.push((version, idx, payload));
        }
        candidates.sort_by_key(|(v, _, _)| *v);
        let Some((version, _idx, payload)) = candidates.pop() else {
            return Ok((Manifest::create(pool), None));
        };
        let state = decode(&payload)?;
        Ok((
            Manifest {
                pool,
                inner: Mutex::new(ManifestInner { version, regions }),
            },
            Some(state),
        ))
    }
}

impl ManifestState {
    /// Checks that every region this state references is still allocated
    /// in `pool`.
    ///
    /// A manifest can decode cleanly yet be stale — e.g. post-crash media
    /// corruption invalidated the newest slot and load fell back to a
    /// generation whose regions later commits already recycled. Walking
    /// such regions would read reused or never-written memory, so recovery
    /// rejects the state up front.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] naming the first dead region.
    pub fn validate_live(&self, pool: &PmemPool) -> Result<()> {
        let check = |what: &str, r: &PmemRegion| -> Result<()> {
            if pool.region_is_live(r.offset, r.len) {
                Ok(())
            } else {
                Err(Error::Corruption(format!(
                    "manifest references freed or unallocated memory: {what} at {:#x}+{:#x}",
                    r.offset, r.len
                )))
            }
        };
        for r in &self.active_wal {
            check("active WAL segment", r)?;
        }
        for r in self.imm_wal.iter().flatten() {
            check("immutable WAL segment", r)?;
        }
        for l in &self.levels {
            if let Some(m) = &l.mark {
                check("insertion mark", m)?;
            }
            let merging = l.merging.iter().flat_map(|(a, b)| [a, b]);
            for t in l.tables.iter().chain(l.lazy_draining.iter()).chain(merging) {
                for r in &t.arenas {
                    check("PMTable arena", r)?;
                }
            }
        }
        for r in self.repo.iter().flat_map(|r| &r.chunks) {
            check("repository chunk", r)?;
        }
        Ok(())
    }
}

/// CRC of one commit: the 32 header bytes of the slot followed by the
/// payload, so corruption of either invalidates the slot.
fn slot_crc(slot: &[u8; SLOT_BYTES as usize], payload: &[u8]) -> u32 {
    let mut h = miodb_common::crc32::Crc32::new();
    h.update(&slot[0..32]);
    h.update(payload);
    h.finish()
}

// --- serialization helpers ------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_regions(out: &mut Vec<u8>, regions: &[PmemRegion]) {
    put_u32(out, regions.len() as u32);
    for r in regions {
        put_u64(out, r.offset);
        put_u64(out, r.len);
    }
}

fn put_table(out: &mut Vec<u8>, t: &TableState) {
    put_u64(out, t.head);
    put_u64(out, t.len);
    put_u64(out, t.data_bytes);
    put_u64(out, t.newest_seq);
    put_regions(out, &t.arenas);
}

fn encode(state: &ManifestState) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    put_u64(&mut out, state.seq);
    put_regions(&mut out, &state.active_wal);
    match &state.imm_wal {
        Some(regs) => {
            out.push(1);
            put_regions(&mut out, regs);
        }
        None => out.push(0),
    }
    put_u32(&mut out, state.levels.len() as u32);
    for l in &state.levels {
        match &l.mark {
            Some(m) => {
                out.push(1);
                put_u64(&mut out, m.offset);
                put_u64(&mut out, m.len);
            }
            None => out.push(0),
        }
        match &l.merging {
            Some((a, b)) => {
                out.push(1);
                put_table(&mut out, a);
                put_table(&mut out, b);
            }
            None => out.push(0),
        }
        match &l.lazy_draining {
            Some(t) => {
                out.push(1);
                put_table(&mut out, t);
            }
            None => out.push(0),
        }
        put_u32(&mut out, l.tables.len() as u32);
        for t in &l.tables {
            put_table(&mut out, t);
        }
    }
    match &state.repo {
        Some(r) => {
            out.push(1);
            put_u64(&mut out, r.head);
            put_u64(&mut out, r.chunk_size);
            put_u64(&mut out, r.cursor);
            put_u64(&mut out, r.end);
            put_u64(&mut out, r.len);
            put_u64(&mut out, r.data_bytes);
            put_regions(&mut out, &r.chunks);
        }
        None => out.push(0),
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    // Invariant (both readers): the explicit bounds check above each
    // `try_into` guarantees the slice is exactly 8 (resp. 4) bytes, so the
    // conversion cannot fail; truncated input surfaces as `Corruption`.
    fn u64(&mut self) -> Result<u64> {
        if self.pos + 8 > self.buf.len() {
            return Err(Error::Corruption("manifest truncated".to_string()));
        }
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32> {
        if self.pos + 4 > self.buf.len() {
            return Err(Error::Corruption("manifest truncated".to_string()));
        }
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        Ok(v)
    }

    fn byte(&mut self) -> Result<u8> {
        if self.pos >= self.buf.len() {
            return Err(Error::Corruption("manifest truncated".to_string()));
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    fn regions(&mut self) -> Result<Vec<PmemRegion>> {
        let n = self.u32()? as usize;
        if n > 1_000_000 {
            return Err(Error::Corruption("implausible region count".to_string()));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(PmemRegion {
                offset: self.u64()?,
                len: self.u64()?,
            });
        }
        Ok(out)
    }

    fn table(&mut self) -> Result<TableState> {
        Ok(TableState {
            head: self.u64()?,
            len: self.u64()?,
            data_bytes: self.u64()?,
            newest_seq: self.u64()?,
            arenas: self.regions()?,
        })
    }
}

fn decode(buf: &[u8]) -> Result<ManifestState> {
    let mut r = Reader { buf, pos: 0 };
    let seq = r.u64()?;
    let active_wal = r.regions()?;
    let imm_wal = if r.byte()? == 1 {
        Some(r.regions()?)
    } else {
        None
    };
    let n_levels = r.u32()? as usize;
    if n_levels > 64 {
        return Err(Error::Corruption("implausible level count".to_string()));
    }
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        let mark = if r.byte()? == 1 {
            Some(PmemRegion {
                offset: r.u64()?,
                len: r.u64()?,
            })
        } else {
            None
        };
        let merging = if r.byte()? == 1 {
            Some((r.table()?, r.table()?))
        } else {
            None
        };
        let lazy_draining = if r.byte()? == 1 {
            Some(r.table()?)
        } else {
            None
        };
        let n_tables = r.u32()? as usize;
        if n_tables > 1_000_000 {
            return Err(Error::Corruption("implausible table count".to_string()));
        }
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            tables.push(r.table()?);
        }
        levels.push(LevelState {
            mark,
            merging,
            lazy_draining,
            tables,
        });
    }
    let repo = if r.byte()? == 1 {
        Some(RepoState {
            head: r.u64()?,
            chunk_size: r.u64()?,
            cursor: r.u64()?,
            end: r.u64()?,
            len: r.u64()?,
            data_bytes: r.u64()?,
            chunks: r.regions()?,
        })
    } else {
        None
    };
    Ok(ManifestState {
        seq,
        active_wal,
        imm_wal,
        levels,
        repo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::Stats;
    use miodb_pmem::DeviceModel;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(
            8 << 20,
            DeviceModel::nvm_unthrottled(),
            Arc::new(Stats::new()),
        )
        .unwrap()
    }

    fn sample_state() -> ManifestState {
        ManifestState {
            seq: 42,
            active_wal: vec![PmemRegion {
                offset: 65536,
                len: 4096,
            }],
            imm_wal: Some(vec![PmemRegion {
                offset: 131072,
                len: 4096,
            }]),
            levels: vec![
                LevelState {
                    mark: Some(PmemRegion {
                        offset: 70000,
                        len: 64,
                    }),
                    merging: None,
                    lazy_draining: None,
                    tables: vec![TableState {
                        head: 80000,
                        len: 10,
                        data_bytes: 1000,
                        newest_seq: 40,
                        arenas: vec![PmemRegion {
                            offset: 80000,
                            len: 8192,
                        }],
                    }],
                },
                LevelState::default(),
            ],
            repo: Some(RepoState {
                head: 90000,
                chunk_size: 65536,
                cursor: 90100,
                end: 155536,
                len: 5,
                data_bytes: 500,
                chunks: vec![PmemRegion {
                    offset: 90000,
                    len: 65536,
                }],
            }),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = sample_state();
        let decoded = decode(&encode(&s)).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn store_load_round_trip() {
        let p = pool();
        let m = Manifest::create(p.clone());
        let s = sample_state();
        m.store(&s).unwrap();
        let (_m2, loaded) = Manifest::load(p).unwrap();
        assert_eq!(loaded.unwrap(), s);
    }

    #[test]
    fn newest_version_wins() {
        let p = pool();
        let m = Manifest::create(p.clone());
        let mut s = sample_state();
        m.store(&s).unwrap();
        s.seq = 100;
        m.store(&s).unwrap();
        s.seq = 200;
        m.store(&s).unwrap();
        let (_m2, loaded) = Manifest::load(p).unwrap();
        assert_eq!(loaded.unwrap().seq, 200);
    }

    #[test]
    fn empty_pool_has_no_manifest() {
        let (_m, loaded) = Manifest::load(pool()).unwrap();
        assert!(loaded.is_none());
    }

    #[test]
    fn load_continues_version_sequence() {
        let p = pool();
        let m = Manifest::create(p.clone());
        let mut s = sample_state();
        m.store(&s).unwrap();
        drop(m);
        let (m2, _) = Manifest::load(p.clone()).unwrap();
        s.seq = 777;
        m2.store(&s).unwrap();
        let (_m3, loaded) = Manifest::load(p).unwrap();
        assert_eq!(loaded.unwrap().seq, 777);
    }

    #[test]
    fn corrupt_newest_slot_falls_back() {
        let p = pool();
        let m = Manifest::create(p.clone());
        let mut s = sample_state();
        s.seq = 1;
        m.store(&s).unwrap();
        s.seq = 2;
        m.store(&s).unwrap();
        // Corrupt the region referenced by the newest slot (slot index =
        // (version-1)%2 = 1 for version 2).
        let mut slot = [0u8; 64];
        p.read_bytes(SLOT1, &mut slot);
        let off = u64::from_le_bytes(slot[8..16].try_into().unwrap());
        p.write_bytes(off, &[0xFF; 8]);
        let (_m2, loaded) = Manifest::load(p).unwrap();
        assert_eq!(
            loaded.unwrap().seq,
            1,
            "must fall back to older valid state"
        );
    }

    #[test]
    fn store_survives_many_updates_without_leaking() {
        let p = pool();
        let m = Manifest::create(p.clone());
        let s = sample_state();
        let baseline = {
            m.store(&s).unwrap();
            m.store(&s).unwrap();
            p.used_bytes()
        };
        for _ in 0..100 {
            m.store(&s).unwrap();
        }
        assert_eq!(
            p.used_bytes(),
            baseline,
            "old manifest regions must be freed"
        );
    }
}
