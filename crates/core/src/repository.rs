//! The bottom-level data repository: huge PMTable or on-SSD LSM.

use std::sync::Arc;

use miodb_common::{OpKind, Result, SequenceNumber, Stats};
use miodb_lsm::{LsmCore, LsmOptions};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_skiplist::iter::OwnedEntry;
use miodb_skiplist::{GrowableSkipList, LookupResult};

/// The destination of lazy-copy compactions.
///
/// In DRAM-NVM mode this is the paper's huge PMTable (a single growable
/// skip list holding exactly the live key set). In DRAM-NVM-SSD mode it is
/// a traditional multi-level SSTable LSM on the SSD device, preserving
/// backward compatibility (§4.1).
pub enum Repository {
    /// Huge persistent skip list in the NVM pool.
    Pm(GrowableSkipList),
    /// SSTable hierarchy on an SSD-class device.
    Lsm(Box<LsmCore>),
}

impl std::fmt::Debug for Repository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Repository::Pm(r) => f.debug_tuple("Repository::Pm").field(r).finish(),
            Repository::Lsm(c) => f.debug_tuple("Repository::Lsm").field(c).finish(),
        }
    }
}

impl Repository {
    /// Creates a huge-PMTable repository in `nvm`.
    ///
    /// # Errors
    ///
    /// Propagates pool exhaustion.
    pub fn new_pm(nvm: Arc<PmemPool>, chunk_bytes: usize) -> Result<Repository> {
        Ok(Repository::Pm(GrowableSkipList::new(nvm, chunk_bytes)?))
    }

    /// Creates an SSD-backed LSM repository.
    pub fn new_lsm(lsm: LsmOptions, device: DeviceModel, stats: Arc<Stats>) -> Repository {
        let store = miodb_lsm::TableStore::new(device, stats);
        Repository::Lsm(Box::new(LsmCore::new(store, lsm)))
    }

    /// Applies one entry from a lazy-copy drain. For the LSM repository
    /// callers should batch with [`Repository::ingest_run`] instead.
    ///
    /// # Errors
    ///
    /// Propagates allocation/build failures.
    pub fn apply(&self, key: &[u8], value: &[u8], seq: SequenceNumber, kind: OpKind) -> Result<()> {
        match self {
            Repository::Pm(r) => {
                r.apply(key, value, seq, kind)?;
                Ok(())
            }
            Repository::Lsm(c) => {
                let e = OwnedEntry {
                    key: key.to_vec(),
                    value: value.to_vec(),
                    seq,
                    kind,
                };
                c.ingest_sorted_run(std::iter::once(e))?;
                Ok(())
            }
        }
    }

    /// Drains a whole sorted run into the repository (preferred for the
    /// LSM mode: one serialized table instead of per-entry ingestion).
    ///
    /// # Errors
    ///
    /// Propagates allocation/build failures.
    pub fn ingest_run(
        &self,
        entries: impl Iterator<Item = OwnedEntry> + Send + 'static,
    ) -> Result<()> {
        match self {
            Repository::Pm(r) => {
                for e in entries {
                    r.apply(&e.key, &e.value, e.seq, e.kind)?;
                }
                Ok(())
            }
            Repository::Lsm(c) => {
                c.ingest_sorted_run(entries)?;
                Ok(())
            }
        }
    }

    /// Point lookup. The PM repository never stores tombstones, the LSM
    /// repository may return them (they are dropped at its bottom level).
    pub fn get(&self, key: &[u8]) -> Result<Option<LookupResult>> {
        match self {
            Repository::Pm(r) => Ok(r.get(key)),
            Repository::Lsm(c) => Ok(c.get(key)?.map(|e| LookupResult {
                value: e.value,
                seq: e.seq,
                kind: e.kind,
            })),
        }
    }

    /// Scan sources for the engine's merging iterator.
    pub fn scan_sources(&self, start: &[u8]) -> Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> {
        match self {
            Repository::Pm(r) => vec![Box::new(r.list().iter_from(start))],
            Repository::Lsm(c) => c.scan_sources(start),
        }
    }

    /// Runs pending LSM compactions (no-op for the PM repository).
    ///
    /// # Errors
    ///
    /// Propagates compaction failures.
    pub fn maintain(&self) -> Result<bool> {
        match self {
            Repository::Pm(_) => Ok(false),
            Repository::Lsm(c) => c.run_one_compaction(),
        }
    }

    /// Returns `true` when no background maintenance is pending.
    pub fn is_quiescent(&self) -> bool {
        match self {
            Repository::Pm(_) => true,
            Repository::Lsm(c) => c.needs_compaction().is_none(),
        }
    }

    /// Live keys (PM) or total entries across tables (LSM, approximate —
    /// includes not-yet-compacted duplicates).
    pub fn len_estimate(&self) -> usize {
        match self {
            Repository::Pm(r) => r.len(),
            Repository::Lsm(c) => c.tables_per_level().iter().sum::<usize>(),
        }
    }

    /// Tables per level for reports (empty for the PM repository).
    pub fn tables_per_level(&self) -> Vec<usize> {
        match self {
            Repository::Pm(_) => Vec::new(),
            Repository::Lsm(c) => c.tables_per_level(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::Stats;

    #[test]
    fn pm_repository_round_trip() {
        let stats = Arc::new(Stats::new());
        let nvm = PmemPool::new(16 << 20, DeviceModel::nvm_unthrottled(), stats).unwrap();
        let repo = Repository::new_pm(nvm, 256 * 1024).unwrap();
        repo.apply(b"k", b"v", 1, OpKind::Put).unwrap();
        assert_eq!(repo.get(b"k").unwrap().unwrap().value, b"v");
        repo.apply(b"k", b"", 2, OpKind::Delete).unwrap();
        assert!(repo.get(b"k").unwrap().is_none());
        assert!(repo.is_quiescent());
    }

    #[test]
    fn lsm_repository_round_trip() {
        let stats = Arc::new(Stats::new());
        let repo = Repository::new_lsm(
            LsmOptions {
                table_bytes: 16 * 1024,
                level1_max_bytes: 64 * 1024,
                ..LsmOptions::default()
            },
            DeviceModel::ssd_unthrottled(),
            stats,
        );
        let entries: Vec<OwnedEntry> = (0..100u32)
            .map(|i| OwnedEntry {
                key: format!("key{i:04}").into_bytes(),
                value: b"v".to_vec(),
                seq: i as u64 + 1,
                kind: OpKind::Put,
            })
            .collect();
        repo.ingest_run(entries.into_iter()).unwrap();
        assert_eq!(repo.get(b"key0042").unwrap().unwrap().seq, 43);
        while repo.maintain().unwrap() {}
        assert!(repo.is_quiescent());
        assert_eq!(repo.get(b"key0042").unwrap().unwrap().seq, 43);
    }

    #[test]
    fn lsm_repository_tombstones_surface() {
        let stats = Arc::new(Stats::new());
        let repo =
            Repository::new_lsm(LsmOptions::default(), DeviceModel::ssd_unthrottled(), stats);
        repo.apply(b"k", b"v", 1, OpKind::Put).unwrap();
        repo.apply(b"k", b"", 2, OpKind::Delete).unwrap();
        let r = repo.get(b"k").unwrap().unwrap();
        assert_eq!(r.kind, OpKind::Delete);
    }
}
