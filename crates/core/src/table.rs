//! PMTables and the engine-side MemTable wrapper.

use std::sync::Arc;

use miodb_bloom::BloomFilter;
use miodb_common::{OpKind, Result, SequenceNumber};
use miodb_pmem::{PmemPool, PmemRegion};
use miodb_skiplist::{SkipList, SkipListArena};
use miodb_wal::WriteAheadLog;
use parking_lot::Mutex;

/// A persistent, immutable-by-writers skip-list table in the elastic
/// buffer.
///
/// A PMTable owns the set of arenas its nodes physically live in: after a
/// zero-copy merge the merged table's nodes span the arenas of both inputs,
/// so arena ownership is transferred (unioned) at merge time and memory is
/// reclaimed only when the table is lazy-copied into the repository.
#[derive(Debug)]
pub struct PmTable {
    /// Read view rooted at the table's head node.
    pub list: SkipList,
    /// Every arena whose nodes may be reachable from `list`.
    pub arenas: Vec<PmemRegion>,
    /// Mergeable bloom filter over the table's keys (kept in DRAM; rebuilt
    /// from the list on recovery).
    pub bloom: BloomFilter,
    /// Approximate number of nodes.
    pub len: usize,
    /// Approximate user bytes.
    pub data_bytes: u64,
    /// Largest sequence number contained (age ordering sanity checks).
    pub newest_seq: SequenceNumber,
}

impl PmTable {
    /// Total NVM bytes held by this table's arenas.
    pub fn arena_bytes(&self) -> u64 {
        self.arenas.iter().map(|a| a.len).sum()
    }

    /// Rebuilds the bloom filter by scanning the list (recovery path).
    pub fn rebuild_bloom(
        list: &SkipList,
        expected_keys: usize,
        bits_per_key: usize,
    ) -> BloomFilter {
        let mut bloom = BloomFilter::with_bits_per_key(expected_keys.max(16), bits_per_key);
        for e in list.iter() {
            bloom.insert(&e.key);
        }
        bloom
    }

    /// Frees all arenas back to `pool`, consuming the table. The caller
    /// must guarantee no readers hold references (see the engine's
    /// unique-ownership GC).
    pub fn release(self, pool: &PmemPool) {
        for a in self.arenas {
            pool.free(a);
        }
    }
}

/// The engine-side MemTable: a DRAM skip-list arena plus its WAL and an
/// incrementally built bloom filter (inherited by the flushed PMTable).
pub struct MemTable {
    arena: SkipListArena,
    wal: WriteAheadLog,
    bloom: Mutex<BloomFilter>,
}

impl std::fmt::Debug for MemTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemTable")
            .field("used", &self.arena.used_bytes())
            .field("len", &self.arena.len())
            .finish()
    }
}

impl MemTable {
    /// Creates a MemTable of `capacity` bytes in `dram`, logging to a
    /// fresh WAL in `nvm`.
    ///
    /// # Errors
    ///
    /// Returns a capacity error if either pool cannot fit its part.
    pub fn new(
        dram: &Arc<PmemPool>,
        nvm: &Arc<PmemPool>,
        capacity: usize,
        wal_segment: usize,
        bloom_bits_per_key: usize,
        bloom_expected_keys: usize,
    ) -> Result<MemTable> {
        let arena = SkipListArena::new(dram.clone(), capacity)?;
        let wal = WriteAheadLog::new(nvm.clone(), wal_segment)?;
        Ok(MemTable {
            arena,
            wal,
            bloom: Mutex::new(BloomFilter::with_bits_per_key(
                bloom_expected_keys,
                bloom_bits_per_key,
            )),
        })
    }

    /// Logs and inserts one entry. Writers must be serialized by the
    /// caller.
    ///
    /// # Errors
    ///
    /// Returns [`miodb_common::Error::ArenaFull`] when the MemTable must be
    /// rotated; the WAL record for the failed insert is harmless (its
    /// sequence number is simply replayed into the next MemTable on
    /// recovery — same value, same outcome).
    pub fn insert(
        &self,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<()> {
        if !self.arena.fits(key.len(), value.len()) {
            return Err(miodb_common::Error::ArenaFull);
        }
        self.wal.append(key, value, seq, kind)?;
        self.arena.insert(key, value, seq, kind)?;
        self.bloom.lock().insert(key);
        Ok(())
    }

    /// Logs and inserts a whole batch with consecutive sequence numbers
    /// starting at `seq_base`, framed as a single WAL record so replay is
    /// all-or-nothing. Writers must be serialized by the caller.
    ///
    /// # Errors
    ///
    /// Returns [`miodb_common::Error::ArenaFull`] (before logging anything)
    /// when the batch does not fit — the caller must rotate to a MemTable
    /// large enough for the whole batch.
    pub fn insert_batch(
        &self,
        entries: &[(Vec<u8>, Vec<u8>, OpKind)],
        seq_base: SequenceNumber,
    ) -> Result<()> {
        let need: u64 = entries
            .iter()
            .map(|(k, v, _)| miodb_skiplist::node_size_upper(k.len(), v.len()))
            .sum();
        if need > self.arena.remaining_bytes() {
            return Err(miodb_common::Error::ArenaFull);
        }
        self.wal.append_batch(entries, seq_base)?;
        let mut bloom = self.bloom.lock();
        for (i, (key, value, kind)) in entries.iter().enumerate() {
            self.arena.insert(key, value, seq_base + i as u64, *kind)?;
            bloom.insert(key);
        }
        Ok(())
    }

    /// Logs a whole write group as **one** WAL record with consecutive
    /// sequence numbers from `seq_base` — the group leader's single
    /// modeled NVM append on behalf of every writer in the group. Indexing
    /// happens afterwards via [`MemTable::insert_concurrent`].
    ///
    /// # Errors
    ///
    /// Propagates WAL allocation failures; nothing is logged on error.
    pub fn log_group(
        &self,
        ops: &[miodb_wal::GroupOp<'_>],
        seq_base: SequenceNumber,
    ) -> Result<()> {
        self.wal.append_group(ops, seq_base)
    }

    /// Inserts one already-logged entry concurrently with other group
    /// members (CAS skip-list splicing; the bloom update takes a short
    /// mutex).
    ///
    /// # Errors
    ///
    /// Returns [`miodb_common::Error::ArenaFull`] if the arena cannot fit
    /// the node — the group leader reserves worst-case capacity up front,
    /// so this indicates a leader bug, but it is handled gracefully.
    pub fn insert_concurrent(
        &self,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<()> {
        self.arena.insert_concurrent(key, value, seq, kind)?;
        self.bloom.lock().insert(key);
        Ok(())
    }

    /// The underlying arena (flush path).
    pub fn arena(&self) -> &SkipListArena {
        &self.arena
    }

    /// Read view.
    pub fn list(&self) -> SkipList {
        self.arena.list()
    }

    /// Snapshot of the bloom filter (cloned into the flushed PMTable).
    pub fn bloom_snapshot(&self) -> BloomFilter {
        self.bloom.lock().clone()
    }

    /// WAL segments, persisted in the manifest for replay.
    pub fn wal_segments(&self) -> Vec<PmemRegion> {
        self.wal.segments()
    }

    /// Releases the arena and the WAL, consuming the MemTable.
    pub fn release(self) {
        self.arena.release();
        self.wal.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::Stats;
    use miodb_pmem::DeviceModel;

    fn pools() -> (Arc<PmemPool>, Arc<PmemPool>) {
        let stats = Arc::new(Stats::new());
        (
            PmemPool::new(4 << 20, DeviceModel::dram(), stats.clone()).unwrap(),
            PmemPool::new(8 << 20, DeviceModel::nvm_unthrottled(), stats).unwrap(),
        )
    }

    #[test]
    fn memtable_logs_and_indexes() {
        let (dram, nvm) = pools();
        let m = MemTable::new(&dram, &nvm, 64 * 1024, 64 * 1024, 16, 1024).unwrap();
        m.insert(b"k", b"v", 1, OpKind::Put).unwrap();
        assert_eq!(m.list().get(b"k").unwrap().value, b"v");
        let replayed = miodb_wal::WriteAheadLog::replay(&nvm, &m.wal_segments()).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key, b"k");
        assert!(m.bloom_snapshot().may_contain(b"k"));
        assert!(!m.bloom_snapshot().may_contain(b"other"));
    }

    #[test]
    fn full_memtable_reports_before_logging() {
        let (dram, nvm) = pools();
        let m = MemTable::new(&dram, &nvm, 8 * 1024, 64 * 1024, 16, 1024).unwrap();
        let big = vec![0u8; 4000];
        m.insert(b"a", &big, 1, OpKind::Put).unwrap();
        let err = m.insert(b"b", &big, 2, OpKind::Put).unwrap_err();
        assert!(matches!(err, miodb_common::Error::ArenaFull));
        // The rejected insert must not have reached the WAL.
        let replayed = miodb_wal::WriteAheadLog::replay(&nvm, &m.wal_segments()).unwrap();
        assert_eq!(replayed.len(), 1);
    }

    #[test]
    fn release_frees_both_pools() {
        let (dram, nvm) = pools();
        let d0 = dram.used_bytes();
        let n0 = nvm.used_bytes();
        let m = MemTable::new(&dram, &nvm, 64 * 1024, 16 * 1024, 16, 1024).unwrap();
        m.insert(b"k", b"v", 1, OpKind::Put).unwrap();
        m.release();
        assert_eq!(dram.used_bytes(), d0);
        assert_eq!(nvm.used_bytes(), n0);
    }

    #[test]
    fn rebuild_bloom_covers_all_keys() {
        let (dram, _nvm) = pools();
        let arena = SkipListArena::new(dram, 64 * 1024).unwrap();
        for i in 0..100u32 {
            arena
                .insert(format!("k{i}").as_bytes(), b"v", i as u64 + 1, OpKind::Put)
                .unwrap();
        }
        let bloom = PmTable::rebuild_bloom(&arena.list(), 100, 16);
        for i in 0..100u32 {
            assert!(bloom.may_contain(format!("k{i}").as_bytes()));
        }
    }
}
