//! YCSB core workloads (paper §5.2).
//!
//! - **Load**: insert the whole record set.
//! - **A**: 50% reads / 50% updates, zipfian.
//! - **B**: 95% reads / 5% updates, zipfian.
//! - **C**: 100% reads, zipfian.
//! - **D**: 95% reads of recent records / 5% inserts, latest distribution.
//! - **E**: 95% scans / 5% inserts, zipfian start keys.
//! - **F**: 50% reads / 50% read-modify-writes, zipfian.
//!
//! The zipfian skew is the YCSB default θ = 0.99 (the paper's "99%
//! skewness").

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use miodb_common::{Histogram, KvEngine, Result};

use crate::keygen::{KeyGen, ValueGen};
use crate::zipfian::{IndexDistribution, Latest, ScrambledZipfian, Uniform};

/// Which YCSB workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbWorkload {
    /// Insert-only load phase.
    Load,
    /// 50/50 read/update, zipfian.
    A,
    /// 95/5 read/update, zipfian.
    B,
    /// Read-only, zipfian.
    C,
    /// 95/5 read/insert, latest.
    D,
    /// 95/5 scan/insert, zipfian.
    E,
    /// 50/50 read/read-modify-write, zipfian.
    F,
}

impl std::fmt::Display for YcsbWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            YcsbWorkload::Load => "Load",
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        };
        f.write_str(s)
    }
}

/// YCSB run parameters.
#[derive(Debug, Clone)]
pub struct YcsbSpec {
    /// Records preloaded before the run phase.
    pub records: u64,
    /// Operations in the run phase (ignored by `Load`).
    pub operations: u64,
    /// Value size in bytes.
    pub value_len: usize,
    /// Client threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Record every operation's latency in [`YcsbResult::timeline`]
    /// (Figure 8).
    pub record_timeline: bool,
    /// Maximum range-scan length for workload E.
    pub max_scan_len: usize,
}

impl Default for YcsbSpec {
    fn default() -> YcsbSpec {
        YcsbSpec {
            records: 10_000,
            operations: 10_000,
            value_len: 1024,
            threads: 1,
            seed: 42,
            record_timeline: false,
            max_scan_len: 100,
        }
    }
}

/// Result of one YCSB phase.
#[derive(Debug, Clone)]
pub struct YcsbResult {
    /// The workload run.
    pub workload: YcsbWorkload,
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u64,
    /// All-operation latency distribution.
    pub latency: Histogram,
    /// Read-only operation latencies.
    pub read_latency: Histogram,
    /// Mutating operation latencies.
    pub write_latency: Histogram,
    /// Per-operation latencies in issue order (thread 0 only), if
    /// requested.
    pub timeline: Vec<u64>,
}

impl YcsbResult {
    /// Throughput in thousands of operations per second. The denominator
    /// is the smaller of wall time and summed per-op latencies: the sum
    /// strips host-scheduler noise on a single client thread, while wall
    /// time is correct for overlapping threads (where the sum would
    /// double-count lock waits).
    pub fn kops(&self) -> f64 {
        let busy = self.latency.sum().min(self.elapsed_ns).max(1);
        self.ops as f64 / (busy as f64 / 1e9) / 1e3
    }
}

enum Op {
    Read,
    Update,
    Insert,
    Scan,
    ReadModifyWrite,
}

fn pick_op(workload: YcsbWorkload, roll: f64) -> Op {
    match workload {
        YcsbWorkload::Load => Op::Insert,
        YcsbWorkload::A => {
            if roll < 0.5 {
                Op::Read
            } else {
                Op::Update
            }
        }
        YcsbWorkload::B => {
            if roll < 0.95 {
                Op::Read
            } else {
                Op::Update
            }
        }
        YcsbWorkload::C => Op::Read,
        YcsbWorkload::D => {
            if roll < 0.95 {
                Op::Read
            } else {
                Op::Insert
            }
        }
        YcsbWorkload::E => {
            if roll < 0.95 {
                Op::Scan
            } else {
                Op::Insert
            }
        }
        YcsbWorkload::F => {
            if roll < 0.5 {
                Op::Read
            } else {
                Op::ReadModifyWrite
            }
        }
    }
}

/// Runs one YCSB phase against `engine`.
///
/// `Load` inserts `spec.records` keys; the other workloads assume a prior
/// load and execute `spec.operations` operations across `spec.threads`
/// client threads.
///
/// # Errors
///
/// Propagates the first engine error.
pub fn run_ycsb(
    engine: &dyn KvEngine,
    workload: YcsbWorkload,
    spec: &YcsbSpec,
) -> Result<YcsbResult> {
    let vg = ValueGen::new(spec.value_len);
    let insert_counter = AtomicU64::new(spec.records);
    let total_ops = if workload == YcsbWorkload::Load {
        spec.records
    } else {
        spec.operations
    };
    let threads = spec.threads.max(1);
    let per_thread = total_ops / threads as u64;

    struct ThreadOut {
        latency: Histogram,
        read_latency: Histogram,
        write_latency: Histogram,
        timeline: Vec<u64>,
        ops: u64,
        error: Option<miodb_common::Error>,
    }

    let start = Instant::now();
    let outs: Vec<ThreadOut> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let insert_counter = &insert_counter;
            let spec = spec.clone();
            let ops_here = if t == threads - 1 {
                total_ops - per_thread * (threads as u64 - 1)
            } else {
                per_thread
            };
            handles.push(s.spawn(move || {
                let mut out = ThreadOut {
                    latency: Histogram::new(),
                    read_latency: Histogram::new(),
                    write_latency: Histogram::new(),
                    timeline: Vec::new(),
                    ops: 0,
                    error: None,
                };
                let seed = spec.seed.wrapping_add(t as u64 * 0x9E37);
                let mut zipf = ScrambledZipfian::new(spec.records.max(1), seed);
                let mut latest = Latest::new(spec.records.max(1), seed ^ 0xABCD);
                let mut roll_rng = Uniform::new(1_000_000, seed ^ 0x1234);
                let mut key_buf = Vec::with_capacity(16);
                let mut val_buf = Vec::with_capacity(spec.value_len);
                let record_timeline = spec.record_timeline && t == 0;

                for i in 0..ops_here {
                    let roll = roll_rng.next_index() as f64 / 1_000_000.0;
                    let op = if workload == YcsbWorkload::Load {
                        Op::Insert
                    } else {
                        pick_op(workload, roll)
                    };
                    let t0 = Instant::now();
                    let r: Result<bool> = (|| match op {
                        Op::Read => {
                            let idx = if workload == YcsbWorkload::D {
                                latest.next_index()
                            } else {
                                zipf.next_index()
                            };
                            KeyGen::key_into(idx, &mut key_buf);
                            engine.get(&key_buf).map(|v| v.is_some())
                        }
                        Op::Update => {
                            let idx = zipf.next_index();
                            KeyGen::key_into(idx, &mut key_buf);
                            vg.value_into(idx ^ i, &mut val_buf);
                            engine.put(&key_buf, &val_buf).map(|()| false)
                        }
                        Op::Insert => {
                            let idx = if workload == YcsbWorkload::Load {
                                // Load phase: thread-partitioned key space.
                                t as u64 * per_thread + i
                            } else {
                                let idx = insert_counter.fetch_add(1, Ordering::Relaxed);
                                latest.set_max(idx + 1);
                                idx
                            };
                            KeyGen::key_into(idx, &mut key_buf);
                            vg.value_into(idx, &mut val_buf);
                            engine.put(&key_buf, &val_buf).map(|()| false)
                        }
                        Op::Scan => {
                            let idx = zipf.next_index();
                            KeyGen::key_into(idx, &mut key_buf);
                            let len = 1 + (roll_rng.next_index() as usize % spec.max_scan_len);
                            engine.scan(&key_buf, len).map(|v| !v.is_empty())
                        }
                        Op::ReadModifyWrite => {
                            let idx = zipf.next_index();
                            KeyGen::key_into(idx, &mut key_buf);
                            let _old = engine.get(&key_buf)?;
                            vg.value_into(idx ^ i ^ 0xF00D, &mut val_buf);
                            engine.put(&key_buf, &val_buf).map(|()| false)
                        }
                    })();
                    let lat = t0.elapsed().as_nanos() as u64;
                    match r {
                        Ok(_) => {}
                        Err(e) => {
                            out.error = Some(e);
                            return out;
                        }
                    }
                    out.latency.record(lat);
                    match op {
                        Op::Read | Op::Scan => out.read_latency.record(lat),
                        _ => out.write_latency.record(lat),
                    }
                    if record_timeline {
                        out.timeline.push(lat);
                    }
                    out.ops += 1;
                }
                out
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("ycsb thread"))
            .collect()
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let mut result = YcsbResult {
        workload,
        ops: 0,
        elapsed_ns,
        latency: Histogram::new(),
        read_latency: Histogram::new(),
        write_latency: Histogram::new(),
        timeline: Vec::new(),
    };
    for out in outs {
        if let Some(e) = out.error {
            return Err(e);
        }
        result.ops += out.ops;
        result.latency.merge(&out.latency);
        result.read_latency.merge(&out.read_latency);
        result.write_latency.merge(&out.write_latency);
        if !out.timeline.is_empty() {
            result.timeline = out.timeline;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::{EngineReport, ScanEntry};
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct MapEngine {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    }

    impl KvEngine for MapEngine {
        fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn delete(&self, key: &[u8]) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
            Ok(self
                .map
                .lock()
                .range(start.to_vec()..)
                .take(limit)
                .map(|(k, v)| ScanEntry {
                    key: k.clone(),
                    value: v.clone(),
                })
                .collect())
        }
        fn wait_idle(&self) -> Result<()> {
            Ok(())
        }
        fn report(&self) -> EngineReport {
            EngineReport::default()
        }
        fn name(&self) -> &str {
            "map"
        }
    }

    fn spec(records: u64, ops: u64) -> YcsbSpec {
        YcsbSpec {
            records,
            operations: ops,
            value_len: 64,
            threads: 2,
            seed: 7,
            record_timeline: false,
            max_scan_len: 10,
        }
    }

    #[test]
    fn load_inserts_all_records() {
        let e = MapEngine::default();
        let r = run_ycsb(&e, YcsbWorkload::Load, &spec(1000, 0)).unwrap();
        assert_eq!(r.ops, 1000);
        assert_eq!(e.map.lock().len(), 1000);
    }

    #[test]
    fn workload_a_mixes_reads_and_updates() {
        let e = MapEngine::default();
        run_ycsb(&e, YcsbWorkload::Load, &spec(500, 0)).unwrap();
        let r = run_ycsb(&e, YcsbWorkload::A, &spec(500, 2000)).unwrap();
        assert_eq!(r.ops, 2000);
        let reads = r.read_latency.count();
        let writes = r.write_latency.count();
        assert_eq!(reads + writes, 2000);
        assert!((reads as f64 - 1000.0).abs() < 200.0, "reads = {reads}");
    }

    #[test]
    fn workload_c_is_read_only() {
        let e = MapEngine::default();
        run_ycsb(&e, YcsbWorkload::Load, &spec(500, 0)).unwrap();
        let before = e.map.lock().clone();
        let r = run_ycsb(&e, YcsbWorkload::C, &spec(500, 1000)).unwrap();
        assert_eq!(r.write_latency.count(), 0);
        assert_eq!(*e.map.lock(), before, "C must not mutate");
    }

    #[test]
    fn workload_d_inserts_grow_keyspace() {
        let e = MapEngine::default();
        run_ycsb(&e, YcsbWorkload::Load, &spec(500, 0)).unwrap();
        run_ycsb(&e, YcsbWorkload::D, &spec(500, 2000)).unwrap();
        assert!(e.map.lock().len() > 500, "D must insert new records");
    }

    #[test]
    fn workload_e_scans() {
        let e = MapEngine::default();
        run_ycsb(&e, YcsbWorkload::Load, &spec(500, 0)).unwrap();
        let r = run_ycsb(&e, YcsbWorkload::E, &spec(500, 500)).unwrap();
        assert!(r.read_latency.count() > 400, "E is scan-dominant");
    }

    #[test]
    fn timeline_recorded_when_requested() {
        let e = MapEngine::default();
        run_ycsb(&e, YcsbWorkload::Load, &spec(100, 0)).unwrap();
        let mut s = spec(100, 400);
        s.record_timeline = true;
        s.threads = 1;
        let r = run_ycsb(&e, YcsbWorkload::A, &s).unwrap();
        assert_eq!(r.timeline.len(), 400);
    }

    #[test]
    fn kops_positive() {
        let e = MapEngine::default();
        let r = run_ycsb(&e, YcsbWorkload::Load, &spec(200, 0)).unwrap();
        assert!(r.kops() > 0.0);
    }
}
