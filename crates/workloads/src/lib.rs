//! Workload generators and drivers for the MioDB evaluation.
//!
//! Reproduces the paper's two benchmark families:
//!
//! - [`dbbench`]: LevelDB's `db_bench` micro-benchmarks — `fillseq`,
//!   `fillrandom`, `readseq`, `readrandom` (§5.1, Figures 6, 9–12);
//! - [`ycsb`]: YCSB core workloads Load and A–F with a zipfian(0.99)
//!   request distribution (§5.2, Figure 7, Tables 2–3).
//!
//! All drivers run against any [`KvEngine`](miodb_common::KvEngine), record
//! per-operation latencies into [`Histogram`](miodb_common::Histogram)s and
//! report throughput, so MioDB and every baseline are measured identically.

pub mod dbbench;
pub mod keygen;
pub mod ycsb;
pub mod zipfian;

pub use dbbench::{run_db_bench, run_fill_concurrent, BenchKind, BenchResult};
pub use keygen::{KeyGen, ValueGen};
pub use ycsb::{run_ycsb, YcsbResult, YcsbSpec, YcsbWorkload};
pub use zipfian::{Latest, ScrambledZipfian, Uniform, Zipfian};
