//! Key and value generation.
//!
//! The paper's dataset uses 16-byte keys and 1–64 KiB values. Keys are
//! fixed-width decimal renderings of an index (so ordinal and lexicographic
//! order agree); values are cheap pseudorandom bytes seeded by the index so
//! they can be regenerated for verification.

/// Fixed-width 16-byte keys: `"k" + 15 decimal digits`.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyGen;

impl KeyGen {
    /// Renders key `i`.
    pub fn key(i: u64) -> Vec<u8> {
        format!("k{i:015}").into_bytes()
    }

    /// Renders key `i` into a reusable buffer, avoiding allocation in hot
    /// loops.
    pub fn key_into(i: u64, buf: &mut Vec<u8>) {
        buf.clear();
        use std::io::Write as _;
        write!(buf, "k{i:015}").expect("write into vec");
    }
}

/// Deterministic value generator: `value(i, len)` always returns the same
/// bytes, so benchmark verification needs no side tables.
#[derive(Debug, Clone, Copy)]
pub struct ValueGen {
    /// Value length in bytes.
    pub len: usize,
}

impl ValueGen {
    /// Creates a generator of `len`-byte values.
    pub fn new(len: usize) -> ValueGen {
        ValueGen { len }
    }

    /// Fills `buf` with the value for index `i`.
    pub fn value_into(&self, i: u64, buf: &mut Vec<u8>) {
        buf.clear();
        buf.reserve(self.len);
        let mut state = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        while buf.len() + 8 <= self.len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            buf.extend_from_slice(&state.to_le_bytes());
        }
        while buf.len() < self.len {
            buf.push((state >> (buf.len() % 8)) as u8);
        }
    }

    /// Returns the value for index `i` as a fresh vector.
    pub fn value(&self, i: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        self.value_into(i, &mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_16_bytes_and_ordered() {
        assert_eq!(KeyGen::key(0).len(), 16);
        // Fixed width holds for any realistic index (up to 10^15 keys).
        assert_eq!(KeyGen::key(999_999_999_999_999).len(), 16);
        assert!(KeyGen::key(1) < KeyGen::key(2));
        assert!(KeyGen::key(99) < KeyGen::key(100));
        assert!(KeyGen::key(999_999) < KeyGen::key(1_000_000));
    }

    #[test]
    fn key_into_matches_key() {
        let mut buf = Vec::new();
        KeyGen::key_into(12345, &mut buf);
        assert_eq!(buf, KeyGen::key(12345));
    }

    #[test]
    fn values_are_deterministic() {
        let g = ValueGen::new(1024);
        assert_eq!(g.value(7), g.value(7));
        assert_ne!(g.value(7), g.value(8));
        assert_eq!(g.value(7).len(), 1024);
    }

    #[test]
    fn odd_lengths_fill_exactly() {
        for len in [0, 1, 7, 9, 100, 1001] {
            assert_eq!(ValueGen::new(len).value(3).len(), len);
        }
    }
}
