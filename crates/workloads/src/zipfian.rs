//! Request distributions: zipfian (YCSB's default, θ = 0.99), scrambled
//! zipfian, latest, and uniform.
//!
//! The zipfian generator follows Gray et al.'s rejection-free method as
//! implemented in YCSB: constants are precomputed for the item count and
//! each draw costs O(1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of item indices in `[0, n)`.
pub trait IndexDistribution: Send {
    /// Draws the next index.
    fn next_index(&mut self) -> u64;
}

/// Classic zipfian over `[0, n)`: item 0 is the most popular.
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    half_pow_theta: f64,
    rng: StdRng,
}

impl Zipfian {
    /// Creates a zipfian distribution over `items` elements with the YCSB
    /// default skew θ = 0.99.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn new(items: u64, seed: u64) -> Zipfian {
        Zipfian::with_theta(items, 0.99, seed)
    }

    /// Creates a zipfian with explicit skew `theta` in (0, 1).
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero or `theta` outside (0, 1).
    pub fn with_theta(items: u64, theta: f64, seed: u64) -> Zipfian {
        assert!(items > 0, "zipfian needs at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = zeta(items, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        let _ = theta;
        Zipfian {
            items,
            alpha,
            zetan,
            eta,
            half_pow_theta: 1.0 + 0.5f64.powf(theta),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Direct summation; called once at construction. For very large n this
    // uses the standard incremental approximation cut-off.
    let cap = n.min(10_000_000);
    let mut sum = 0.0;
    for i in 1..=cap {
        sum += 1.0 / (i as f64).powf(theta);
    }
    if n > cap {
        // Integral tail approximation of the generalized harmonic number.
        let a = 1.0 - theta;
        sum += ((n as f64).powf(a) - (cap as f64).powf(a)) / a;
    }
    sum
}

impl IndexDistribution for Zipfian {
    fn next_index(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.half_pow_theta {
            return 1;
        }
        let idx = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(self.items - 1)
    }
}

/// Zipfian with the popularity ranking scattered across the keyspace by a
/// hash, as in YCSB's `ScrambledZipfianGenerator` — hot keys are spread out
/// rather than clustered at the low end.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled zipfian over `items` with θ = 0.99.
    pub fn new(items: u64, seed: u64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::new(items, seed),
        }
    }
}

impl IndexDistribution for ScrambledZipfian {
    fn next_index(&mut self) -> u64 {
        let raw = self.inner.next_index();
        fnv_hash(raw) % self.inner.items
    }
}

fn fnv_hash(v: u64) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// "Latest" distribution (YCSB workload D): skewed toward the most
/// recently inserted items. The caller advances `max` as inserts happen.
#[derive(Debug, Clone)]
pub struct Latest {
    zipf: Zipfian,
    max: u64,
}

impl Latest {
    /// Creates a latest-skewed distribution with initial item count `max`.
    pub fn new(max: u64, seed: u64) -> Latest {
        Latest {
            zipf: Zipfian::new(max.max(1), seed),
            max: max.max(1),
        }
    }

    /// Records that item `max` now exists (newest).
    pub fn set_max(&mut self, max: u64) {
        self.max = max.max(1);
    }
}

impl IndexDistribution for Latest {
    fn next_index(&mut self) -> u64 {
        let off = self.zipf.next_index() % self.max;
        self.max - 1 - off
    }
}

/// Uniform distribution over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Uniform {
    items: u64,
    rng: StdRng,
}

impl Uniform {
    /// Creates a uniform distribution over `items` elements.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn new(items: u64, seed: u64) -> Uniform {
        assert!(items > 0);
        Uniform {
            items,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl IndexDistribution for Uniform {
    fn next_index(&mut self) -> u64 {
        self.rng.gen_range(0..self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipfian_stays_in_range() {
        let mut z = Zipfian::new(1000, 42);
        for _ in 0..10_000 {
            assert!(z.next_index() < 1000);
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut z = Zipfian::new(10_000, 7);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let draws = 100_000;
        for _ in 0..draws {
            *counts.entry(z.next_index()).or_default() += 1;
        }
        // Item 0 should dominate: YCSB zipfian(0.99) gives it several
        // percent of all accesses.
        let top = counts.get(&0).copied().unwrap_or(0);
        assert!(top as f64 > draws as f64 * 0.02, "item 0 drew only {top}");
        // And the top-1% of items should cover a large share of draws.
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u64 = freqs.iter().take(100).sum();
        assert!(
            hot as f64 > draws as f64 * 0.4,
            "hot items cover {hot}/{draws}"
        );
    }

    #[test]
    fn zipfian_deterministic_per_seed() {
        let mut a = Zipfian::new(500, 9);
        let mut b = Zipfian::new(500, 9);
        for _ in 0..100 {
            assert_eq!(a.next_index(), b.next_index());
        }
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let mut s = ScrambledZipfian::new(10_000, 3);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(s.next_index()).or_default() += 1;
        }
        // The two hottest items should not be adjacent indices.
        let mut by_count: Vec<(u64, u64)> = counts.into_iter().collect();
        by_count.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let gap = by_count[0].0.abs_diff(by_count[1].0);
        assert!(gap > 1, "hot keys clustered: {:?}", &by_count[..2]);
    }

    #[test]
    fn latest_prefers_recent() {
        let mut l = Latest::new(1000, 5);
        let mut recent = 0;
        for _ in 0..10_000 {
            if l.next_index() >= 900 {
                recent += 1;
            }
        }
        assert!(recent > 5_000, "only {recent} draws in the newest 10%");
        l.set_max(2000);
        for _ in 0..100 {
            assert!(l.next_index() < 2000);
        }
    }

    #[test]
    fn uniform_covers_range() {
        let mut u = Uniform::new(100, 1);
        let mut seen = [false; 100];
        for _ in 0..10_000 {
            seen[u.next_index() as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 95);
    }

    #[test]
    fn zeta_matches_direct_sum() {
        let direct: f64 = (1..=1000).map(|i| 1.0 / (i as f64).powf(0.99)).sum();
        assert!((zeta(1000, 0.99) - direct).abs() < 1e-9);
    }
}
