//! `db_bench`-style micro-benchmarks (paper §5.1).

use std::time::Instant;

use miodb_common::{Histogram, KvEngine, Result};

use crate::keygen::{KeyGen, ValueGen};
use crate::zipfian::{IndexDistribution, Uniform};

/// Which micro-benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchKind {
    /// Sequential inserts of `n` fresh keys.
    FillSeq,
    /// Random-order inserts of `n` fresh keys (a permutation, as in
    /// db_bench's `fillrandom`).
    FillRandom,
    /// Sequential reads of `n` existing keys.
    ReadSeq,
    /// Uniform random reads of `n` existing keys.
    ReadRandom,
    /// Uniform random overwrites of existing keys.
    Overwrite,
    /// Uniform random deletions of existing keys.
    DeleteRandom,
    /// Random range scans (`seekrandom` in db_bench): seek to a uniform
    /// key and read a short run.
    SeekRandom,
}

impl std::fmt::Display for BenchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BenchKind::FillSeq => "fillseq",
            BenchKind::FillRandom => "fillrandom",
            BenchKind::ReadSeq => "readseq",
            BenchKind::ReadRandom => "readrandom",
            BenchKind::Overwrite => "overwrite",
            BenchKind::DeleteRandom => "deleterandom",
            BenchKind::SeekRandom => "seekrandom",
        };
        f.write_str(s)
    }
}

/// Result of one micro-benchmark run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark kind.
    pub kind: BenchKind,
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock time of the run in nanoseconds.
    pub elapsed_ns: u64,
    /// Per-operation latency distribution.
    pub latency: Histogram,
    /// Read operations that found a value (reads only).
    pub hits: u64,
}

impl BenchResult {
    /// Throughput denominator: the smaller of wall time and summed
    /// per-operation latencies. The sum strips host-scheduler noise from
    /// the simulator's background threads (wall > sum on a busy host);
    /// with overlapping client threads the sum double-counts lock waits
    /// (sum > wall), so the minimum is correct on both sides.
    fn busy_ns(&self) -> u64 {
        self.latency.sum().min(self.elapsed_ns).max(1)
    }

    /// Throughput in thousands of operations per second.
    pub fn kops(&self) -> f64 {
        self.ops as f64 / (self.busy_ns() as f64 / 1e9) / 1e3
    }

    /// Data throughput in MiB/s for `value_len`-byte values.
    pub fn mib_per_sec(&self, value_len: usize) -> f64 {
        let bytes = self.ops * (16 + value_len as u64);
        bytes as f64 / (self.busy_ns() as f64 / 1e9) / (1024.0 * 1024.0)
    }
}

/// A deterministic permutation of `[0, n)` used by `fillrandom` so every
/// key is written exactly once but in pseudorandom order: a 4-round
/// Feistel network over the enclosing power-of-four domain with
/// cycle-walking (each out-of-range output is re-permuted; the cycle
/// containing `i < n` always returns into range, so this terminates and
/// stays bijective). `seed` keys the round function, giving a different
/// reproducible insertion order per seed — the Feistel structure is a
/// bijection for any round function, so uniqueness is preserved.
fn permuted(i: u64, n: u64, seed: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let bits = 64 - (n - 1).leading_zeros();
    let half = bits.div_ceil(2);
    let mask = (1u64 << half) - 1;
    let mut x = i;
    loop {
        let mut l = (x >> half) & mask;
        let mut r = x & mask;
        for round in 0..4u64 {
            let f = r
                .wrapping_add(round)
                .wrapping_add(seed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let f = (f ^ (f >> 29)) & mask;
            let next_l = r;
            r = l ^ f;
            l = next_l;
        }
        x = (l << half) | r;
        if x < n {
            return x;
        }
    }
}

/// Runs one micro-benchmark of `n` operations with `value_len`-byte
/// values. Read benchmarks assume keys `[0, existing)` were loaded.
///
/// # Errors
///
/// Propagates the first engine error.
pub fn run_db_bench(
    engine: &dyn KvEngine,
    kind: BenchKind,
    n: u64,
    existing: u64,
    value_len: usize,
    seed: u64,
) -> Result<BenchResult> {
    let vg = ValueGen::new(value_len);
    let mut latency = Histogram::new();
    let mut hits = 0u64;
    let mut key_buf = Vec::with_capacity(16);
    let mut val_buf = Vec::with_capacity(value_len);
    let mut uniform = Uniform::new(existing.max(1), seed);

    let start = Instant::now();
    for i in 0..n {
        let t0 = Instant::now();
        match kind {
            BenchKind::FillSeq => {
                KeyGen::key_into(i, &mut key_buf);
                vg.value_into(i, &mut val_buf);
                engine.put(&key_buf, &val_buf)?;
            }
            BenchKind::FillRandom => {
                let k = permuted(i, n, seed);
                KeyGen::key_into(k, &mut key_buf);
                vg.value_into(k, &mut val_buf);
                engine.put(&key_buf, &val_buf)?;
            }
            BenchKind::ReadSeq => {
                KeyGen::key_into(i % existing.max(1), &mut key_buf);
                if engine.get(&key_buf)?.is_some() {
                    hits += 1;
                }
            }
            BenchKind::ReadRandom => {
                KeyGen::key_into(uniform.next_index(), &mut key_buf);
                if engine.get(&key_buf)?.is_some() {
                    hits += 1;
                }
            }
            BenchKind::Overwrite => {
                let k = uniform.next_index();
                KeyGen::key_into(k, &mut key_buf);
                vg.value_into(k ^ i, &mut val_buf);
                engine.put(&key_buf, &val_buf)?;
            }
            BenchKind::DeleteRandom => {
                KeyGen::key_into(uniform.next_index(), &mut key_buf);
                engine.delete(&key_buf)?;
            }
            BenchKind::SeekRandom => {
                KeyGen::key_into(uniform.next_index(), &mut key_buf);
                let run = engine.scan(&key_buf, 10)?;
                if !run.is_empty() {
                    hits += 1;
                }
            }
        }
        latency.record(t0.elapsed().as_nanos() as u64);
    }
    Ok(BenchResult {
        kind,
        ops: n,
        elapsed_ns: start.elapsed().as_nanos() as u64,
        latency,
        hits,
    })
}

/// Multi-threaded `fillrandom`: `threads` writers insert `n` unique keys
/// concurrently (thread `t` takes permutation indices `i ≡ t mod threads`,
/// so the union is exactly the `fillrandom` keyset with no duplicates).
/// `elapsed_ns` is wall-clock across the whole storm, which is what
/// `busy_ns` picks for overlapping clients, so `kops()` reports aggregate
/// throughput. `seed` selects the insertion-order permutation, so a run
/// is fully reproducible from `(n, value_len, threads, seed)`.
///
/// # Errors
///
/// Propagates the first engine error from any writer thread.
pub fn run_fill_concurrent(
    engine: &dyn KvEngine,
    n: u64,
    value_len: usize,
    threads: usize,
    seed: u64,
) -> Result<BenchResult> {
    let threads = threads.max(1);
    let start = Instant::now();
    let per_thread: Vec<Result<Histogram>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || -> Result<Histogram> {
                    let vg = ValueGen::new(value_len);
                    let mut latency = Histogram::new();
                    let mut key_buf = Vec::with_capacity(16);
                    let mut val_buf = Vec::with_capacity(value_len);
                    let mut i = t as u64;
                    while i < n {
                        let k = permuted(i, n, seed);
                        KeyGen::key_into(k, &mut key_buf);
                        vg.value_into(k, &mut val_buf);
                        let t0 = Instant::now();
                        engine.put(&key_buf, &val_buf)?;
                        latency.record(t0.elapsed().as_nanos() as u64);
                        i += threads as u64;
                    }
                    Ok(latency)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let mut latency = Histogram::new();
    for r in per_thread {
        latency.merge(&r?);
    }
    Ok(BenchResult {
        kind: BenchKind::FillRandom,
        ops: n,
        elapsed_ns,
        latency,
        hits: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::{EngineReport, ScanEntry};
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    /// Minimal in-memory engine for driver tests.
    #[derive(Default)]
    struct MapEngine {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    }

    impl KvEngine for MapEngine {
        fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn delete(&self, key: &[u8]) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
            Ok(self
                .map
                .lock()
                .range(start.to_vec()..)
                .take(limit)
                .map(|(k, v)| ScanEntry {
                    key: k.clone(),
                    value: v.clone(),
                })
                .collect())
        }
        fn wait_idle(&self) -> Result<()> {
            Ok(())
        }
        fn report(&self) -> EngineReport {
            EngineReport::default()
        }
        fn name(&self) -> &str {
            "map"
        }
    }

    #[test]
    fn fillrandom_writes_every_key_once() {
        let e = MapEngine::default();
        run_db_bench(&e, BenchKind::FillRandom, 500, 0, 32, 1).unwrap();
        assert_eq!(e.map.lock().len(), 500);
        for i in 0..500u64 {
            assert!(
                e.map.lock().contains_key(&KeyGen::key(i)),
                "key {i} missing"
            );
        }
    }

    #[test]
    fn readrandom_hits_loaded_keys() {
        let e = MapEngine::default();
        run_db_bench(&e, BenchKind::FillSeq, 100, 0, 16, 1).unwrap();
        let r = run_db_bench(&e, BenchKind::ReadRandom, 1000, 100, 16, 2).unwrap();
        assert_eq!(r.hits, 1000, "all reads must hit");
        assert!(r.kops() > 0.0);
    }

    #[test]
    fn overwrite_touches_only_existing_keys() {
        let e = MapEngine::default();
        run_db_bench(&e, BenchKind::FillSeq, 100, 0, 16, 1).unwrap();
        run_db_bench(&e, BenchKind::Overwrite, 300, 100, 16, 2).unwrap();
        assert_eq!(e.map.lock().len(), 100, "overwrites must not create keys");
    }

    #[test]
    fn deleterandom_removes_keys() {
        let e = MapEngine::default();
        run_db_bench(&e, BenchKind::FillSeq, 100, 0, 16, 1).unwrap();
        run_db_bench(&e, BenchKind::DeleteRandom, 500, 100, 16, 2).unwrap();
        assert!(e.map.lock().len() < 100, "some keys must be gone");
    }

    #[test]
    fn seekrandom_scans_runs() {
        let e = MapEngine::default();
        run_db_bench(&e, BenchKind::FillSeq, 200, 0, 16, 1).unwrap();
        let r = run_db_bench(&e, BenchKind::SeekRandom, 100, 200, 16, 3).unwrap();
        assert_eq!(r.hits, 100, "every seek inside the keyspace finds a run");
    }

    #[test]
    fn concurrent_fill_writes_every_key_once() {
        let e = MapEngine::default();
        let r = run_fill_concurrent(&e, 1000, 32, 4, 7).unwrap();
        assert_eq!(r.ops, 1000);
        assert_eq!(r.latency.count(), 1000);
        assert_eq!(
            e.map.lock().len(),
            1000,
            "threads must partition the keyset"
        );
        for i in 0..1000u64 {
            assert!(
                e.map.lock().contains_key(&KeyGen::key(i)),
                "key {i} missing"
            );
        }
    }

    #[test]
    fn permutation_is_bijective() {
        for seed in [0u64, 7, u64::MAX] {
            for n in [1u64, 2, 10, 100, 1000] {
                let mut seen = vec![false; n as usize];
                for i in 0..n {
                    let p = permuted(i, n, seed);
                    assert!(p < n);
                    assert!(!seen[p as usize], "collision at {i} (n={n}, seed={seed})");
                    seen[p as usize] = true;
                }
            }
        }
    }

    #[test]
    fn permutation_order_varies_with_seed() {
        let a: Vec<u64> = (0..64).map(|i| permuted(i, 64, 1)).collect();
        let b: Vec<u64> = (0..64).map(|i| permuted(i, 64, 2)).collect();
        assert_ne!(a, b, "different seeds must give different orders");
    }

    #[test]
    fn latency_histogram_populated() {
        let e = MapEngine::default();
        let r = run_db_bench(&e, BenchKind::FillSeq, 50, 0, 64, 1).unwrap();
        assert_eq!(r.latency.count(), 50);
        assert!(r.mib_per_sec(64) > 0.0);
    }
}
