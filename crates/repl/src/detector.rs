//! Deadline-based failure detection for replication peers.
//!
//! Both ends of a replication stream carry a pulse: the leader pushes a
//! frame (records or an empty heartbeat) at least every poll interval,
//! and the follower acks every frame it receives — so each side can run
//! a [`FailureDetector`] fed by frame arrivals. Silence is graded, not
//! binary: a peer quiet for half the configured timeout is *suspect*
//! (keep waiting, don't act), and one quiet for the full timeout is
//! *dead* — the leader drops the follower from the quorum set, a
//! follower starts an election.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Graded liveness verdict for a monitored peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Heard from recently.
    Alive,
    /// Quiet past half the timeout: possibly slow, possibly gone.
    Suspect,
    /// Quiet past the full timeout: treat as failed.
    Dead,
}

/// Tracks the last time a peer showed a sign of life and grades the
/// silence since.
#[derive(Debug)]
pub struct FailureDetector {
    dead_after: Duration,
    last_seen: Mutex<Instant>,
}

impl FailureDetector {
    /// A detector that declares the peer dead after `dead_after` of
    /// silence (and suspect after half that). The peer starts alive.
    pub fn new(dead_after: Duration) -> FailureDetector {
        FailureDetector {
            dead_after,
            last_seen: Mutex::new(Instant::now()),
        }
    }

    /// Records a sign of life (frame, ack, successful connect).
    pub fn observe(&self) {
        *self.last_seen.lock() = Instant::now();
    }

    /// How long the peer has been silent.
    pub fn silent_for(&self) -> Duration {
        self.last_seen.lock().elapsed()
    }

    /// Current verdict.
    pub fn liveness(&self) -> Liveness {
        let silent = self.silent_for();
        if silent >= self.dead_after {
            Liveness::Dead
        } else if silent >= self.dead_after / 2 {
            Liveness::Suspect
        } else {
            Liveness::Alive
        }
    }

    /// `true` once the silence crossed the dead threshold.
    pub fn is_dead(&self) -> bool {
        self.liveness() == Liveness::Dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_escalates_alive_suspect_dead() {
        let d = FailureDetector::new(Duration::from_millis(40));
        assert_eq!(d.liveness(), Liveness::Alive);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(d.liveness(), Liveness::Suspect);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(d.liveness(), Liveness::Dead);
        assert!(d.is_dead());
    }

    #[test]
    fn observation_resets_the_deadline() {
        let d = FailureDetector::new(Duration::from_millis(40));
        std::thread::sleep(Duration::from_millis(25));
        d.observe();
        assert_eq!(d.liveness(), Liveness::Alive);
    }
}
