//! The leader's in-memory replication log.
//!
//! Every committed WAL record (a single op or a whole commit group) is
//! published here by the engine's commit pipeline, in commit order, and
//! retained until a byte budget forces truncation from the front.
//! Subscriber threads block in [`ReplicationLog::fetch_after`] and are
//! woken by the next publish, so streaming latency is one condvar wake,
//! not a polling interval.
//!
//! The log stores the *framed* record bytes exactly as the WAL persisted
//! them — one CRC covers the NVM copy, the wire copy and the follower's
//! replay. Sequence coverage is dense: entry N+1's `seq_first` is always
//! entry N's `seq_last + 1`, because publishes happen under the engine's
//! write mutex in sequence-allocation order.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// One published record: a framed WAL record covering a dense sequence
/// range. `bytes` is shared so a slow subscriber never forces a copy.
#[derive(Debug, Clone)]
pub struct ReplEntry {
    /// First sequence number covered.
    pub seq_first: u64,
    /// Last sequence number covered (inclusive).
    pub seq_last: u64,
    /// Framed WAL record bytes (`crc | len | payload`).
    pub bytes: Arc<Vec<u8>>,
}

/// What a subscriber gets back from [`ReplicationLog::fetch_after`].
#[derive(Debug, Default)]
pub struct Fetched {
    /// Entries with `seq_last > after`, oldest first (empty on timeout —
    /// the subscriber should emit a heartbeat).
    pub entries: Vec<ReplEntry>,
    /// The log has truncated past the subscriber's position: records it
    /// needs are gone and it must catch up from a snapshot instead.
    pub truncated: bool,
}

#[derive(Debug)]
struct LogState {
    entries: VecDeque<ReplEntry>,
    /// Total payload bytes retained (truncation budget).
    bytes: usize,
    /// Highest sequence number published (0 before the first publish).
    last_seq: u64,
}

/// Bounded in-memory log of committed records awaiting shipment.
#[derive(Debug)]
pub struct ReplicationLog {
    state: Mutex<LogState>,
    cv: Condvar,
    retain_bytes: usize,
}

impl ReplicationLog {
    /// Creates a log that retains up to `retain_bytes` of record payload
    /// (always at least the most recent entry).
    pub fn new(retain_bytes: usize) -> ReplicationLog {
        ReplicationLog {
            state: Mutex::new(LogState {
                entries: VecDeque::new(),
                bytes: 0,
                last_seq: 0,
            }),
            cv: Condvar::new(),
            retain_bytes,
        }
    }

    /// Appends one committed record and wakes blocked subscribers.
    /// Callers publish in commit order (the engine holds its write mutex
    /// across the publish).
    pub fn publish(&self, bytes: &[u8], seq_first: u64, seq_last: u64) {
        let mut s = self.state.lock();
        s.bytes += bytes.len();
        s.entries.push_back(ReplEntry {
            seq_first,
            seq_last,
            bytes: Arc::new(bytes.to_vec()),
        });
        s.last_seq = s.last_seq.max(seq_last);
        while s.entries.len() > 1 && s.bytes > self.retain_bytes {
            // Invariant: len > 1 was just checked.
            let dropped = s.entries.pop_front().unwrap();
            s.bytes -= dropped.bytes.len();
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Highest sequence number published so far (0 when nothing has).
    pub fn last_seq(&self) -> u64 {
        self.state.lock().last_seq
    }

    /// Total payload bytes currently retained.
    pub fn bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Drops entries fully covered by `floor` (`seq_last <= floor`):
    /// eager truncation to the minimum durable cursor across live
    /// subscribers, so retention tracks actual replication progress
    /// instead of waiting for the byte budget.
    pub fn truncate_below(&self, floor: u64) {
        let mut s = self.state.lock();
        while s.entries.front().is_some_and(|e| e.seq_last <= floor) {
            // Invariant: front exists, just checked.
            let dropped = s.entries.pop_front().unwrap();
            s.bytes -= dropped.bytes.len();
        }
    }

    /// `(log_start, last)`: the oldest sequence number still retained and
    /// the newest published. A subscriber that has applied everything
    /// `<= from` can stream iff `from + 1 >= log_start`; otherwise the
    /// records it needs were truncated and it must snapshot first.
    pub fn bounds(&self) -> (u64, u64) {
        let s = self.state.lock();
        let start = s.entries.front().map_or(s.last_seq + 1, |e| e.seq_first);
        (start, s.last_seq)
    }

    /// Blocks up to `timeout` for entries past `after`, returning at most
    /// `max_bytes` worth (always at least one entry when any qualifies).
    /// An empty result means the timeout elapsed with nothing new — the
    /// subscriber should send a heartbeat and call again.
    pub fn fetch_after(&self, after: u64, max_bytes: usize, timeout: Duration) -> Fetched {
        let mut s = self.state.lock();
        if s.last_seq <= after {
            self.cv.wait_for(&mut s, timeout);
        }
        let mut out = Fetched::default();
        if s.last_seq <= after {
            return out;
        }
        if s.entries.front().is_some_and(|e| e.seq_first > after + 1) {
            out.truncated = true;
            return out;
        }
        let mut bytes = 0usize;
        for e in s.entries.iter().filter(|e| e.seq_last > after) {
            if !out.entries.is_empty() && bytes + e.bytes.len() > max_bytes {
                break;
            }
            bytes += e.bytes.len();
            out.entries.push(e.clone());
        }
        out
    }

    /// Wakes every blocked subscriber (shutdown path).
    pub fn wake_all(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_fetch_in_order() {
        let log = ReplicationLog::new(1 << 20);
        log.publish(&[1, 2, 3], 1, 2);
        log.publish(&[4, 5], 3, 3);
        let f = log.fetch_after(0, usize::MAX, Duration::from_millis(1));
        assert!(!f.truncated);
        assert_eq!(f.entries.len(), 2);
        assert_eq!(f.entries[0].seq_first, 1);
        assert_eq!(f.entries[1].seq_last, 3);
        // Resuming mid-log only returns the tail.
        let f = log.fetch_after(2, usize::MAX, Duration::from_millis(1));
        assert_eq!(f.entries.len(), 1);
        assert_eq!(f.entries[0].seq_first, 3);
    }

    #[test]
    fn fetch_times_out_empty() {
        let log = ReplicationLog::new(1 << 20);
        let f = log.fetch_after(0, usize::MAX, Duration::from_millis(5));
        assert!(f.entries.is_empty());
        assert!(!f.truncated);
    }

    #[test]
    fn byte_budget_truncates_front() {
        let log = ReplicationLog::new(100);
        log.publish(&[0u8; 80], 1, 1);
        log.publish(&[0u8; 80], 2, 2);
        log.publish(&[0u8; 80], 3, 3);
        let (start, last) = log.bounds();
        assert_eq!(last, 3);
        assert!(start > 1, "front must have been truncated");
        // A subscriber at offset 0 now needs a snapshot.
        let f = log.fetch_after(0, usize::MAX, Duration::from_millis(1));
        assert!(f.truncated);
        assert!(f.entries.is_empty());
        // A subscriber at the retained frontier can still stream.
        let f = log.fetch_after(start - 1, usize::MAX, Duration::from_millis(1));
        assert!(!f.truncated);
        assert!(!f.entries.is_empty());
    }

    #[test]
    fn max_bytes_caps_but_never_starves() {
        let log = ReplicationLog::new(1 << 20);
        log.publish(&[0u8; 64], 1, 1);
        log.publish(&[0u8; 64], 2, 2);
        let f = log.fetch_after(0, 10, Duration::from_millis(1));
        assert_eq!(f.entries.len(), 1, "at least one entry despite tiny cap");
    }

    #[test]
    fn truncate_below_drops_acked_prefix() {
        let log = ReplicationLog::new(1 << 20);
        log.publish(&[0u8; 10], 1, 2);
        log.publish(&[0u8; 10], 3, 3);
        log.publish(&[0u8; 10], 4, 6);
        assert_eq!(log.bytes(), 30);
        // Floor mid-entry keeps the entry that still covers unacked seqs.
        log.truncate_below(2);
        assert_eq!(log.bounds(), (3, 6));
        assert_eq!(log.bytes(), 20);
        // Floor at the tip empties the log entirely; bounds stay sane.
        log.truncate_below(6);
        assert_eq!(log.bounds(), (7, 6));
        assert_eq!(log.bytes(), 0);
        // New publishes resume normally after a full truncation.
        log.publish(&[0u8; 10], 7, 7);
        assert_eq!(log.bounds(), (7, 7));
    }

    #[test]
    fn publish_wakes_blocked_fetch() {
        let log = Arc::new(ReplicationLog::new(1 << 20));
        let l2 = log.clone();
        let t = std::thread::spawn(move || l2.fetch_after(0, usize::MAX, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        log.publish(&[7], 1, 1);
        let f = t.join().unwrap();
        assert_eq!(f.entries.len(), 1);
    }
}
