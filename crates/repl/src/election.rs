//! Deterministic leader election with epoch fencing.
//!
//! When a follower's failure detector declares the leader dead, the node
//! runs [`try_elect`]. The protocol is a pre-vote-style two round trip
//! over the ordinary wire protocol's `ReplVote` opcode:
//!
//! 1. **Probe round** (`ReplVote` with `epoch == 0`, never grantable):
//!    ask every peer for its `(epoch, last_seq, leader_live,
//!    leader_hint)`. Three things can short-circuit the candidacy:
//!    a reachable peer that *is* a live leader (adopt it — the "dead"
//!    leader was a local blip or a partition just healed), a reachable
//!    peer that is strictly more caught up (stand by — that node will
//!    nominate itself, and voters would refuse us anyway), or fewer than
//!    a majority of the group reachable (report [`ElectionOutcome::NoQuorum`]
//!    rather than spin a doomed candidacy).
//! 2. **Vote round**: self-nominate at `max(known epochs) + 1` and ask
//!    every reachable peer for a vote. A peer grants at most one vote per
//!    epoch and only to candidates at least as caught up as itself
//!    (`(last_seq, addr)` lexicographic), so two candidates at the same
//!    epoch cannot both win, and any winner holds every quorum-acked
//!    write (its vote majority intersects every ack majority in a node
//!    that refused to vote for a less-caught-up candidate).
//!
//! The vote RPC doubles as a fencing channel: a deposed leader receiving
//! `ReplVote` observes the higher epoch and steps down before the new
//! leader takes its first write. Vote messages honour the
//! `repl.vote.drop` fault point so chaos tests can partition elections.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use miodb_common::proto::{self, Request, Response};
use miodb_common::{fault, majority, Error, Result, RoleState};

/// What one peer said during a probe or vote round.
#[derive(Debug, Clone)]
pub struct PeerStatus {
    /// Peer address the RPC targeted.
    pub addr: String,
    /// Vote granted (always `false` for probes).
    pub granted: bool,
    /// Peer's replication epoch.
    pub epoch: u64,
    /// Peer's highest applied sequence number.
    pub last_seq: u64,
    /// Peer believes the leader it follows is alive (or is itself a
    /// live leader).
    pub leader_live: bool,
    /// Peer's believed leader address (empty when unknown).
    pub leader_hint: String,
}

/// Result of one [`try_elect`] round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectionOutcome {
    /// This node won a majority of votes and assumed leadership at
    /// `epoch`.
    Won {
        /// The fresh mandate's epoch.
        epoch: u64,
    },
    /// A reachable peer is a live leader (possibly at a newer epoch):
    /// follow it instead of running a candidacy.
    FollowLeader {
        /// The live leader's address.
        addr: String,
        /// Its epoch.
        epoch: u64,
    },
    /// A better-qualified peer is reachable, or the candidacy lost the
    /// vote: wait a beat and re-probe (the better peer should win).
    Standby,
    /// Fewer than a majority of the group is reachable: no election can
    /// succeed. Callers degrade to [`Error::QuorumLost`] behaviour.
    NoQuorum,
}

/// One `ReplVote` round trip to `addr`. `epoch == 0` is a probe (peers
/// answer with status but never grant).
///
/// # Errors
///
/// Returns [`Error::Io`] when the peer is unreachable or the injected
/// `repl.vote.drop` fault swallows the message, and [`Error::Background`]
/// when the peer does not speak the vote protocol.
pub fn vote_rpc(
    addr: &str,
    epoch: u64,
    last_seq: u64,
    candidate: &str,
    timeout: Duration,
) -> Result<PeerStatus> {
    if fault::hit(fault::points::REPL_VOTE_DROP).is_some() {
        return Err(Error::Io(std::io::Error::other("injected vote drop")));
    }
    let sock_addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| Error::Background(format!("bad peer address {addr:?}: {e}")))?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout).map_err(Error::Io)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let read_half = stream.try_clone().map_err(Error::Io)?;
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let req = Request::ReplVote {
        epoch,
        last_seq,
        candidate: candidate.to_string(),
    };
    proto::write_request(&mut writer, 1, &req).map_err(Error::Io)?;
    writer.flush().map_err(Error::Io)?;
    match proto::read_frame(&mut reader)? {
        Some(frame) => match Response::decode(frame.opcode, &frame.body)? {
            Response::Vote {
                granted,
                epoch,
                last_seq,
                leader_live,
                leader_hint,
            } => Ok(PeerStatus {
                addr: addr.to_string(),
                granted,
                epoch,
                last_seq,
                leader_live,
                leader_hint,
            }),
            Response::Err(msg) => Err(Error::Background(format!("vote refused: {msg}"))),
            other => Err(Error::Background(format!(
                "unexpected vote reply: {other:?}"
            ))),
        },
        None => Err(Error::Io(std::io::Error::other(
            "peer closed connection during vote",
        ))),
    }
}

/// Probes every peer (vote RPC at epoch 0) and returns the reachable
/// ones' statuses.
pub fn probe_peers(peers: &[String], self_addr: &str, timeout: Duration) -> Vec<PeerStatus> {
    peers
        .iter()
        .filter(|p| p.as_str() != self_addr)
        .filter_map(|p| vote_rpc(p, 0, 0, self_addr, timeout).ok())
        .collect()
}

/// Runs one election round for the node at `self_addr` whose engine has
/// applied `my_seq`. `peers` is the full group membership (this node's
/// own address may be included; it is skipped). Adopts any newer epoch
/// learned along the way into `role`, and on a win flips `role` to
/// leader at the new epoch.
pub fn try_elect(
    role: &Arc<RoleState>,
    self_addr: &str,
    peers: &[String],
    my_seq: u64,
    timeout: Duration,
) -> ElectionOutcome {
    let group_size = peers.iter().filter(|p| p.as_str() != self_addr).count() + 1;
    let need = majority(group_size);

    // Round 1: probe. Learn epochs, find live leaders and better
    // candidates, and check reachability before disturbing anyone.
    let probed = probe_peers(peers, self_addr, timeout);
    let mut max_epoch = role.epoch();
    for p in &probed {
        max_epoch = max_epoch.max(p.epoch);
        if p.epoch > role.epoch() {
            role.observe_epoch(p.epoch, &p.leader_hint);
        }
    }
    // A peer that is itself a live leader: rejoin it. (Its hint names
    // itself; a follower's hint names a third party we may not reach —
    // only trust first-hand claims.)
    if let Some(leader) = probed
        .iter()
        .filter(|p| p.leader_live && p.leader_hint == p.addr)
        .max_by_key(|p| p.epoch)
    {
        role.observe_epoch(leader.epoch, &leader.addr);
        role.set_leader_hint(&leader.addr);
        return ElectionOutcome::FollowLeader {
            addr: leader.addr.clone(),
            epoch: leader.epoch,
        };
    }
    if probed.len() + 1 < need {
        return ElectionOutcome::NoQuorum;
    }
    // Defer to a strictly better-qualified reachable peer: voters would
    // refuse us, and the stagger avoids split-vote livelock.
    if probed
        .iter()
        .any(|p| (p.last_seq, p.addr.as_str()) > (my_seq, self_addr))
    {
        return ElectionOutcome::Standby;
    }

    // Round 2: candidacy at a fresh epoch.
    let new_epoch = max_epoch + 1;
    if !role.consider_vote(new_epoch, my_seq, self_addr, my_seq, self_addr) {
        // Our own vote this epoch is already spent (concurrent election
        // advanced the state under us).
        return ElectionOutcome::Standby;
    }
    let mut granted = 1; // self
    for p in &probed {
        // An unreachable peer mid-election simply counts as no vote.
        if let Ok(v) = vote_rpc(&p.addr, new_epoch, my_seq, self_addr, timeout) {
            if v.epoch > new_epoch {
                // Someone is already past us; their election wins.
                role.observe_epoch(v.epoch, &v.leader_hint);
                return ElectionOutcome::Standby;
            }
            if v.granted {
                granted += 1;
            }
        }
    }
    if granted >= need {
        role.become_leader(new_epoch);
        role.set_leader_hint(self_addr);
        ElectionOutcome::Won { epoch: new_epoch }
    } else {
        ElectionOutcome::Standby
    }
}
