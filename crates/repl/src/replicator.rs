//! Leader-side replication state: the log, subscriber ack tracking, the
//! configured ack level and follower-lag measurement.
//!
//! The engine publishes into the [`ReplicationLog`]; per-subscriber
//! server threads stream from it and feed acks back through
//! [`Replicator::record_ack`]. [`Replicator::wait_committed`] is the
//! semi-sync blocking point: a writer parks until *some* follower has
//! acknowledged its last sequence number, or times out with
//! [`Error::MaybeApplied`] — the write is locally durable, but its
//! replication state is unknown, so the client must not treat it as
//! replicated. That asymmetry is what keeps the durable-prefix oracle
//! honest across failover: every plain `Ok` PUT is on at least one
//! follower.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb_common::{AckLevel, ConcurrentHistogram, Error, Histogram, ReplicationSink, Result};
use parking_lot::{Condvar, Mutex};

use crate::log::ReplicationLog;

/// Leader-side replication tunables.
#[derive(Debug, Clone)]
pub struct ReplicatorOptions {
    /// When a PUT/DELETE/BATCH acknowledgement is released to the client.
    pub ack_level: AckLevel,
    /// Semi-sync patience: how long a writer waits for a follower ack
    /// before surfacing `MaybeApplied`.
    pub semi_sync_timeout: Duration,
    /// Replication-log retention budget; followers that fall further
    /// behind than this must catch up from a snapshot.
    pub retain_bytes: usize,
}

impl Default for ReplicatorOptions {
    fn default() -> ReplicatorOptions {
        ReplicatorOptions {
            ack_level: AckLevel::Async,
            semi_sync_timeout: Duration::from_secs(1),
            retain_bytes: 64 << 20,
        }
    }
}

#[derive(Debug, Default)]
struct AckState {
    /// Per-subscriber highest contiguously applied offset.
    subscribers: HashMap<u64, u64>,
    /// Highest offset acked by *any* subscriber (what semi-sync waits on).
    max_acked: u64,
    /// Publish timestamps awaiting their first ack, oldest first, for the
    /// follower-lag histogram.
    pending: VecDeque<(u64, Instant)>,
}

/// Leader-side replication hub. One per leader engine; shared with every
/// subscriber-serving thread.
pub struct Replicator {
    log: Arc<ReplicationLog>,
    acks: Mutex<AckState>,
    ack_cv: Condvar,
    opts: ReplicatorOptions,
    /// Publish-to-first-ack latency in nanoseconds.
    lag: ConcurrentHistogram,
    next_subscriber: AtomicU64,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("ack_level", &self.opts.ack_level)
            .field("max_acked", &self.max_acked())
            .finish()
    }
}

impl Replicator {
    /// Creates the hub with an empty log.
    pub fn new(opts: ReplicatorOptions) -> Arc<Replicator> {
        let lag = ConcurrentHistogram::new();
        lag.set_enabled(true);
        Arc::new(Replicator {
            log: Arc::new(ReplicationLog::new(opts.retain_bytes)),
            acks: Mutex::new(AckState::default()),
            ack_cv: Condvar::new(),
            opts,
            lag,
            next_subscriber: AtomicU64::new(1),
        })
    }

    /// The shared record log subscriber threads stream from.
    pub fn log(&self) -> &Arc<ReplicationLog> {
        &self.log
    }

    /// The configured ack level.
    pub fn ack_level(&self) -> AckLevel {
        self.opts.ack_level
    }

    /// Registers a subscriber; the returned id keys its acks until
    /// [`Replicator::deregister_subscriber`].
    pub fn register_subscriber(&self) -> u64 {
        let id = self.next_subscriber.fetch_add(1, Ordering::Relaxed);
        self.acks.lock().subscribers.insert(id, 0);
        id
    }

    /// Forgets a disconnected subscriber (its past acks still count
    /// toward `max_acked` — applied records don't un-apply).
    pub fn deregister_subscriber(&self, id: u64) {
        self.acks.lock().subscribers.remove(&id);
    }

    /// Records that subscriber `id` has applied everything `<= offset`,
    /// waking semi-sync writers and charging the lag histogram.
    pub fn record_ack(&self, id: u64, offset: u64) {
        let now = Instant::now();
        let mut s = self.acks.lock();
        if let Some(prev) = s.subscribers.get_mut(&id) {
            *prev = (*prev).max(offset);
        }
        if offset > s.max_acked {
            s.max_acked = offset;
            while s.pending.front().is_some_and(|&(seq, _)| seq <= offset) {
                // Invariant: front exists, just checked.
                let (_, published) = s.pending.pop_front().unwrap();
                self.lag
                    .record(now.duration_since(published).as_nanos() as u64);
            }
            drop(s);
            self.ack_cv.notify_all();
        }
    }

    /// Number of currently connected subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.acks.lock().subscribers.len()
    }

    /// Highest offset acked by any subscriber.
    pub fn max_acked(&self) -> u64 {
        self.acks.lock().max_acked
    }

    /// Snapshot of the publish-to-first-ack lag distribution (ns).
    pub fn lag_histogram(&self) -> Histogram {
        self.lag.snapshot()
    }
}

impl ReplicationSink for Replicator {
    fn publish(&self, bytes: &[u8], seq_first: u64, seq_last: u64) {
        // Stamp before the log publish so a racing instant ack can never
        // observe a missing pending entry.
        self.acks
            .lock()
            .pending
            .push_back((seq_last, Instant::now()));
        self.log.publish(bytes, seq_first, seq_last);
    }

    fn wait_committed(&self, seq_last: u64) -> Result<()> {
        if self.opts.ack_level == AckLevel::Async {
            return Ok(());
        }
        let deadline = Instant::now() + self.opts.semi_sync_timeout;
        let mut s = self.acks.lock();
        while s.max_acked < seq_last {
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::MaybeApplied(format!(
                    "semi-sync replication ack timeout at seq {seq_last} (acked {})",
                    s.max_acked
                )));
            }
            self.ack_cv.wait_for(&mut s, deadline - now);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn semi_sync(timeout_ms: u64) -> Arc<Replicator> {
        Replicator::new(ReplicatorOptions {
            ack_level: AckLevel::SemiSync,
            semi_sync_timeout: Duration::from_millis(timeout_ms),
            ..ReplicatorOptions::default()
        })
    }

    #[test]
    fn async_never_blocks() {
        let r = Replicator::new(ReplicatorOptions::default());
        r.publish(&[1], 1, 1);
        assert!(r.wait_committed(1).is_ok());
    }

    #[test]
    fn semi_sync_timeout_is_maybe_applied() {
        let r = semi_sync(10);
        r.publish(&[1], 1, 1);
        let err = r.wait_committed(1).unwrap_err();
        assert!(err.is_maybe_applied(), "{err}");
    }

    #[test]
    fn semi_sync_released_by_ack() {
        let r = semi_sync(5_000);
        r.publish(&[1], 1, 3);
        let id = r.register_subscriber();
        let r2 = r.clone();
        let t = std::thread::spawn(move || r2.wait_committed(3));
        std::thread::sleep(Duration::from_millis(10));
        r.record_ack(id, 3);
        assert!(t.join().unwrap().is_ok());
        assert_eq!(r.max_acked(), 3);
        assert_eq!(r.lag_histogram().count(), 1);
    }

    #[test]
    fn acks_are_monotonic_per_subscriber() {
        let r = semi_sync(10);
        let id = r.register_subscriber();
        r.record_ack(id, 5);
        r.record_ack(id, 3); // stale ack must not regress
        assert_eq!(r.max_acked(), 5);
        r.deregister_subscriber(id);
        assert_eq!(r.subscriber_count(), 0);
        assert_eq!(r.max_acked(), 5, "applied records don't un-apply");
    }
}
