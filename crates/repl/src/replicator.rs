//! Leader-side replication state: the log, subscriber ack tracking, the
//! configured ack level and follower-lag measurement.
//!
//! The engine publishes into the [`ReplicationLog`]; per-subscriber
//! server threads stream from it and feed acks back through
//! [`Replicator::record_ack`]. [`Replicator::wait_committed`] is the
//! blocking point for the stronger ack levels:
//!
//! - `semi-sync` parks a writer until *some* follower has acknowledged
//!   its last sequence number,
//! - `quorum` parks it until enough followers have that a majority of
//!   the whole group (leader included) holds the write.
//!
//! A timeout surfaces as [`Error::MaybeApplied`] — locally durable,
//! replication state unknown. Losing the quorum itself (too few live
//! subscribers to ever reach majority) surfaces as the typed
//! [`Error::QuorumLost`], never a silent downgrade. That asymmetry is
//! what keeps the durable-prefix oracle honest across failover: every
//! plain `Ok` PUT at quorum level is on a majority of the group and
//! survives any election that keeps a majority alive.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb_common::{
    majority, AckLevel, ConcurrentHistogram, Error, Histogram, ReplicationSink, Result,
};
use parking_lot::{Condvar, Mutex};

use crate::log::{Fetched, ReplicationLog};

/// Leader-side replication tunables.
#[derive(Debug, Clone)]
pub struct ReplicatorOptions {
    /// When a PUT/DELETE/BATCH acknowledgement is released to the client.
    pub ack_level: AckLevel,
    /// Semi-sync/quorum patience: how long a writer waits for acks
    /// before surfacing `MaybeApplied`.
    pub semi_sync_timeout: Duration,
    /// Replication-log retention budget; followers that fall further
    /// behind than this must catch up from a snapshot.
    pub retain_bytes: usize,
    /// Total replication group size, leader included. `quorum` ack level
    /// waits for `majority(group_size) - 1` follower acks.
    pub group_size: usize,
}

impl Default for ReplicatorOptions {
    fn default() -> ReplicatorOptions {
        ReplicatorOptions {
            ack_level: AckLevel::Async,
            semi_sync_timeout: Duration::from_secs(1),
            retain_bytes: 64 << 20,
            group_size: 2,
        }
    }
}

#[derive(Debug)]
struct SubState {
    /// Highest contiguously applied offset this subscriber has acked.
    acked: u64,
    /// When its last ack (including heartbeat acks) arrived.
    last_ack: Instant,
}

#[derive(Debug, Default)]
struct AckState {
    /// Per-subscriber ack state, keyed by registration id.
    subscribers: HashMap<u64, SubState>,
    /// Highest offset acked by *any* subscriber, ever (what semi-sync
    /// waits on; survives deregistration — applied records don't
    /// un-apply).
    max_acked: u64,
    /// Publish timestamps awaiting their first ack, oldest first, for the
    /// follower-lag histogram.
    pending: VecDeque<(u64, Instant)>,
}

impl AckState {
    /// The `k`-th highest live subscriber cursor (1-based), or 0 when
    /// fewer than `k` subscribers are connected. With `k = majority - 1`
    /// this is the quorum-durable frontier: that many followers plus the
    /// leader hold everything at or below it.
    fn kth_highest(&self, k: usize) -> u64 {
        if k == 0 {
            return u64::MAX;
        }
        if self.subscribers.len() < k {
            return 0;
        }
        let mut cursors: Vec<u64> = self.subscribers.values().map(|s| s.acked).collect();
        cursors.sort_unstable_by(|a, b| b.cmp(a));
        cursors[k - 1]
    }
}

/// Leader-side replication hub. One per node; shared with every
/// subscriber-serving thread. Quiescent on followers (no publishes) and
/// activated wholesale when the node wins an election.
pub struct Replicator {
    log: Arc<ReplicationLog>,
    acks: Mutex<AckState>,
    ack_cv: Condvar,
    opts: ReplicatorOptions,
    /// Publish-to-first-ack latency in nanoseconds.
    lag: ConcurrentHistogram,
    next_subscriber: AtomicU64,
    /// Sequences `<= base` predate this node's leadership: they were
    /// applied via replication (or recovery), never published into the
    /// log. A subscriber behind `base` must snapshot-catch-up, because
    /// the log cannot prove it holds the prefix.
    base: AtomicU64,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("ack_level", &self.opts.ack_level)
            .field("group_size", &self.opts.group_size)
            .field("max_acked", &self.max_acked())
            .finish()
    }
}

impl Replicator {
    /// Creates the hub with an empty log.
    pub fn new(opts: ReplicatorOptions) -> Arc<Replicator> {
        let lag = ConcurrentHistogram::new();
        lag.set_enabled(true);
        Arc::new(Replicator {
            log: Arc::new(ReplicationLog::new(opts.retain_bytes)),
            acks: Mutex::new(AckState::default()),
            ack_cv: Condvar::new(),
            opts,
            lag,
            next_subscriber: AtomicU64::new(1),
            base: AtomicU64::new(0),
        })
    }

    /// The shared record log subscriber threads stream from.
    pub fn log(&self) -> &Arc<ReplicationLog> {
        &self.log
    }

    /// The configured ack level.
    pub fn ack_level(&self) -> AckLevel {
        self.opts.ack_level
    }

    /// Total group size (leader included) used for quorum math.
    pub fn group_size(&self) -> usize {
        self.opts.group_size
    }

    /// Marks everything `<= seq` as predating this node's leadership
    /// (called at promotion with the engine's `last_sequence`).
    pub fn set_base(&self, seq: u64) {
        self.base.store(seq, Ordering::SeqCst);
    }

    /// `(log_start, last)` as a subscriber should see them: the log's
    /// bounds clamped so nothing below the leadership base looks
    /// streamable.
    pub fn subscribe_bounds(&self) -> (u64, u64) {
        let (start, last) = self.log.bounds();
        let base = self.base.load(Ordering::SeqCst);
        (start.max(base + 1), last.max(base))
    }

    /// Fetches entries past `after` for a subscriber, honoring the
    /// leadership base: a cursor below it is reported as truncated (the
    /// log never held those records on this node).
    pub fn fetch_after(&self, after: u64, max_bytes: usize, timeout: Duration) -> Fetched {
        if after < self.base.load(Ordering::SeqCst) {
            return Fetched {
                entries: Vec::new(),
                truncated: true,
            };
        }
        self.log.fetch_after(after, max_bytes, timeout)
    }

    /// Registers a subscriber; the returned id keys its acks until
    /// [`Replicator::deregister_subscriber`].
    pub fn register_subscriber(&self) -> u64 {
        let id = self.next_subscriber.fetch_add(1, Ordering::Relaxed);
        self.acks.lock().subscribers.insert(
            id,
            SubState {
                acked: 0,
                last_ack: Instant::now(),
            },
        );
        id
    }

    /// Forgets a disconnected (or detector-declared-dead) subscriber. It
    /// leaves the quorum set immediately; its past acks still count
    /// toward `max_acked` (applied records don't un-apply), and quorum
    /// writers blocked on it are woken to re-evaluate — possibly into
    /// `QuorumLost`.
    pub fn deregister_subscriber(&self, id: u64) {
        self.acks.lock().subscribers.remove(&id);
        self.ack_cv.notify_all();
    }

    /// Records that subscriber `id` has applied everything `<= offset`,
    /// waking blocked writers, charging the lag histogram and eagerly
    /// truncating the log to the minimum durable cursor.
    pub fn record_ack(&self, id: u64, offset: u64) {
        let now = Instant::now();
        let mut s = self.acks.lock();
        if let Some(sub) = s.subscribers.get_mut(&id) {
            sub.acked = sub.acked.max(offset);
            sub.last_ack = now;
        }
        if offset > s.max_acked {
            s.max_acked = offset;
            while s.pending.front().is_some_and(|&(seq, _)| seq <= offset) {
                // Invariant: front exists, just checked.
                let (_, published) = s.pending.pop_front().unwrap();
                self.lag
                    .record(now.duration_since(published).as_nanos() as u64);
            }
        }
        // Everything at or below every live subscriber's cursor is
        // durably replicated everywhere it needs to be; drop it from
        // retention (the byte budget stays as the hard bound while any
        // subscriber lags or none is connected).
        let floor = s.subscribers.values().map(|s| s.acked).min();
        drop(s);
        if let Some(floor) = floor {
            if floor > 0 {
                self.log.truncate_below(floor);
            }
        }
        self.ack_cv.notify_all();
    }

    /// Number of currently connected subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.acks.lock().subscribers.len()
    }

    /// How long subscriber `id` has been silent (no ack, not even a
    /// heartbeat ack), or `None` when it is not registered. Feeds the
    /// leader's follower failure detector.
    pub fn ack_silent_for(&self, id: u64) -> Option<Duration> {
        self.acks
            .lock()
            .subscribers
            .get(&id)
            .map(|s| s.last_ack.elapsed())
    }

    /// Highest offset acked by any subscriber.
    pub fn max_acked(&self) -> u64 {
        self.acks.lock().max_acked
    }

    /// The quorum-durable frontier: the highest sequence number held by
    /// a majority of the group (leader included). `u64::MAX` when the
    /// group is so small the leader alone is a majority.
    pub fn quorum_acked(&self) -> u64 {
        let need = majority(self.opts.group_size).saturating_sub(1);
        self.acks.lock().kth_highest(need)
    }

    /// Whether enough subscribers are connected that a quorum ack is
    /// *possible* (leader counts toward the majority).
    pub fn quorum_available(&self) -> bool {
        let need = majority(self.opts.group_size).saturating_sub(1);
        self.acks.lock().subscribers.len() >= need
    }

    /// Admission check run by the server *before* a mutation enters the
    /// engine: at quorum ack level with a majority unreachable, refuse
    /// typed instead of accepting a write that could never quorum-ack.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QuorumLost`] when too few followers are
    /// connected for a majority; the mutation was not applied.
    pub fn admit_write(&self) -> Result<()> {
        if self.opts.ack_level != AckLevel::Quorum {
            return Ok(());
        }
        let have = self.subscriber_count() + 1;
        let need = majority(self.opts.group_size);
        if have < need {
            return Err(Error::QuorumLost { have, need });
        }
        Ok(())
    }

    /// Per-subscriber replication lag in records: `(id, last_seq -
    /// acked)` for every connected subscriber.
    pub fn subscriber_lags(&self) -> Vec<(u64, u64)> {
        let last = self.log.last_seq().max(self.base.load(Ordering::SeqCst));
        let s = self.acks.lock();
        let mut lags: Vec<(u64, u64)> = s
            .subscribers
            .iter()
            .map(|(&id, sub)| (id, last.saturating_sub(sub.acked)))
            .collect();
        lags.sort_unstable();
        lags
    }

    /// Snapshot of the publish-to-first-ack lag distribution (ns).
    pub fn lag_histogram(&self) -> Histogram {
        self.lag.snapshot()
    }

    /// Prometheus text exposition of replication gauges: log bytes,
    /// subscriber count, quorum availability and per-follower lag.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# TYPE miodb_repl_log_bytes gauge\n");
        let _ = writeln!(out, "miodb_repl_log_bytes {}", self.log.bytes());
        out.push_str("# TYPE miodb_repl_log_last_seq gauge\n");
        let _ = writeln!(out, "miodb_repl_log_last_seq {}", self.log.last_seq());
        out.push_str("# TYPE miodb_repl_subscribers gauge\n");
        let _ = writeln!(out, "miodb_repl_subscribers {}", self.subscriber_count());
        out.push_str("# TYPE miodb_repl_quorum_available gauge\n");
        let _ = writeln!(
            out,
            "miodb_repl_quorum_available {}",
            u8::from(self.quorum_available())
        );
        out.push_str("# TYPE miodb_repl_lag_records gauge\n");
        for (id, lag) in self.subscriber_lags() {
            let _ = writeln!(out, "miodb_repl_lag_records{{follower=\"{id}\"}} {lag}");
        }
        out
    }
}

impl ReplicationSink for Replicator {
    fn publish(&self, bytes: &[u8], seq_first: u64, seq_last: u64) {
        // Stamp before the log publish so a racing instant ack can never
        // observe a missing pending entry.
        self.acks
            .lock()
            .pending
            .push_back((seq_last, Instant::now()));
        self.log.publish(bytes, seq_first, seq_last);
    }

    fn wait_committed(&self, seq_last: u64) -> Result<()> {
        let need_acks = match self.opts.ack_level {
            AckLevel::Async => return Ok(()),
            AckLevel::SemiSync => 1,
            AckLevel::Quorum => majority(self.opts.group_size).saturating_sub(1),
        };
        if need_acks == 0 {
            return Ok(()); // a one-node group: the leader is the majority
        }
        let deadline = Instant::now() + self.opts.semi_sync_timeout;
        let mut s = self.acks.lock();
        loop {
            let acked = match self.opts.ack_level {
                AckLevel::SemiSync => s.max_acked,
                _ => s.kth_highest(need_acks),
            };
            if acked >= seq_last {
                return Ok(());
            }
            // Quorum can become *impossible*, not just slow: with fewer
            // live subscribers than needed acks, waiting out the timeout
            // would mislabel a structural outage as ambiguity. The write
            // is locally durable but not quorum-replicated.
            if self.opts.ack_level == AckLevel::Quorum && s.subscribers.len() < need_acks {
                return Err(Error::QuorumLost {
                    have: s.subscribers.len() + 1,
                    need: majority(self.opts.group_size),
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::MaybeApplied(format!(
                    "{} replication ack timeout at seq {seq_last} (acked {acked})",
                    self.opts.ack_level.label()
                )));
            }
            self.ack_cv.wait_for(&mut s, deadline - now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_level(level: AckLevel, group_size: usize, timeout_ms: u64) -> Arc<Replicator> {
        Replicator::new(ReplicatorOptions {
            ack_level: level,
            semi_sync_timeout: Duration::from_millis(timeout_ms),
            group_size,
            ..ReplicatorOptions::default()
        })
    }

    fn semi_sync(timeout_ms: u64) -> Arc<Replicator> {
        with_level(AckLevel::SemiSync, 2, timeout_ms)
    }

    #[test]
    fn async_never_blocks() {
        let r = Replicator::new(ReplicatorOptions::default());
        r.publish(&[1], 1, 1);
        assert!(r.wait_committed(1).is_ok());
    }

    #[test]
    fn semi_sync_timeout_is_maybe_applied() {
        let r = semi_sync(10);
        r.publish(&[1], 1, 1);
        let err = r.wait_committed(1).unwrap_err();
        assert!(err.is_maybe_applied(), "{err}");
    }

    #[test]
    fn semi_sync_released_by_ack() {
        let r = semi_sync(5_000);
        r.publish(&[1], 1, 3);
        let id = r.register_subscriber();
        let r2 = r.clone();
        let t = std::thread::spawn(move || r2.wait_committed(3));
        std::thread::sleep(Duration::from_millis(10));
        r.record_ack(id, 3);
        assert!(t.join().unwrap().is_ok());
        assert_eq!(r.max_acked(), 3);
        assert_eq!(r.lag_histogram().count(), 1);
    }

    #[test]
    fn acks_are_monotonic_per_subscriber() {
        let r = semi_sync(10);
        let id = r.register_subscriber();
        r.record_ack(id, 5);
        r.record_ack(id, 3); // stale ack must not regress
        assert_eq!(r.max_acked(), 5);
        r.deregister_subscriber(id);
        assert_eq!(r.subscriber_count(), 0);
        assert_eq!(r.max_acked(), 5, "applied records don't un-apply");
    }

    #[test]
    fn quorum_waits_for_majority_not_fastest() {
        // Group of 3: majority 2 = leader + 1 follower ack.
        let r = with_level(AckLevel::Quorum, 3, 5_000);
        let a = r.register_subscriber();
        let _b = r.register_subscriber();
        r.publish(&[1], 1, 4);
        let r2 = r.clone();
        let t = std::thread::spawn(move || r2.wait_committed(4));
        std::thread::sleep(Duration::from_millis(10));
        r.record_ack(a, 4);
        assert!(t.join().unwrap().is_ok());
        assert_eq!(r.quorum_acked(), 4);

        // Group of 5: majority 3 = 2 follower acks; one is not enough.
        let r = with_level(AckLevel::Quorum, 5, 20);
        let a = r.register_subscriber();
        let _b = r.register_subscriber();
        r.publish(&[1], 1, 1);
        r.record_ack(a, 1);
        let err = r.wait_committed(1).unwrap_err();
        assert!(err.is_maybe_applied(), "{err}");
    }

    #[test]
    fn quorum_without_majority_is_typed_quorum_lost() {
        let r = with_level(AckLevel::Quorum, 3, 5_000);
        assert!(!r.quorum_available());
        let err = r.admit_write().unwrap_err();
        assert!(err.is_quorum_lost(), "{err}");
        r.publish(&[1], 1, 1);
        let err = r.wait_committed(1).unwrap_err();
        assert!(err.is_quorum_lost(), "{err}");

        // A subscriber joining restores availability...
        let id = r.register_subscriber();
        assert!(r.quorum_available());
        assert!(r.admit_write().is_ok());
        // ...and a blocked writer collapses to QuorumLost when the last
        // quorum-relevant follower dies mid-wait.
        r.publish(&[2], 2, 2);
        let r2 = r.clone();
        let t = std::thread::spawn(move || r2.wait_committed(2));
        std::thread::sleep(Duration::from_millis(10));
        r.deregister_subscriber(id);
        let err = t.join().unwrap().unwrap_err();
        assert!(err.is_quorum_lost(), "{err}");
    }

    #[test]
    fn ack_floor_truncates_log_eagerly() {
        let r = with_level(AckLevel::Quorum, 3, 100);
        let a = r.register_subscriber();
        let b = r.register_subscriber();
        r.publish(&[0u8; 8], 1, 1);
        r.publish(&[0u8; 8], 2, 2);
        r.publish(&[0u8; 8], 3, 3);
        // Fast follower alone must not truncate past the slow one.
        r.record_ack(a, 3);
        assert_eq!(r.log().bounds().0, 1, "slow follower still needs seq 1");
        r.record_ack(b, 2);
        assert_eq!(r.log().bounds().0, 3, "min durable cursor is 2");
        assert_eq!(r.subscriber_lags(), vec![(a, 0), (b, 1)]);
    }

    #[test]
    fn base_fences_pre_leadership_sequences() {
        let r = semi_sync(10);
        r.set_base(100);
        assert_eq!(r.subscribe_bounds(), (101, 100));
        // A subscriber behind the base cannot stream: those records were
        // never in this node's log.
        let f = r.fetch_after(40, usize::MAX, Duration::from_millis(1));
        assert!(f.truncated);
        // One exactly at the base streams the new tail.
        r.publish(&[1], 101, 101);
        let f = r.fetch_after(100, usize::MAX, Duration::from_millis(50));
        assert!(!f.truncated);
        assert_eq!(f.entries.len(), 1);
    }

    #[test]
    fn prometheus_exposition_has_lag_and_log_gauges() {
        let r = with_level(AckLevel::Quorum, 3, 100);
        let id = r.register_subscriber();
        r.publish(&[0u8; 16], 1, 2);
        let text = r.render_prometheus();
        assert!(text.contains("miodb_repl_log_bytes 16"), "{text}");
        assert!(
            text.contains(&format!("miodb_repl_lag_records{{follower=\"{id}\"}} 2")),
            "{text}"
        );
        assert!(text.contains("miodb_repl_quorum_available 1"), "{text}");
    }
}
