//! The follower: a background apply loop that subscribes to a leader,
//! replays shipped WAL records into its own engine and acknowledges a
//! monotonic applied offset.
//!
//! Lifecycle:
//!
//! - [`Follower::start`] spawns the apply thread. It connects with
//!   exponential backoff, subscribes from the engine's `last_sequence`
//!   (everything below it is already applied and locally durable), and
//!   streams. A dropped connection resumes from the applied offset — the
//!   leader's log covers it unless retention truncated past it, in which
//!   case the loop ends in [`FollowerState::NeedsSnapshot`] and the
//!   follower must be rebuilt via [`bootstrap_from_leader`] (the
//!   self-healing node supervisor does this itself).
//! - Every received frame — records or empty heartbeat — is acked with
//!   the applied offset *and the follower's epoch*, so acks double as
//!   follower → leader heartbeats and as the fencing channel that tells
//!   a stale leader it was deposed.
//! - A leader quiet past `leader_dead_timeout` (no frames, or
//!   unreachable across reconnects) ends the loop in
//!   [`FollowerState::LeaderDead`]; the supervisor reacts by running an
//!   election.
//! - [`Follower::promote`] is failover: drain whatever the dying leader
//!   still has buffered in flight, stop the loop, and hand back the
//!   final applied offset. The caller then flips its server role to
//!   leader and starts taking writes — sequence allocation continues
//!   from the applied offset because [`MioDb::apply_replicated`] advances
//!   the engine's sequence counter as it replays.
//!
//! Records pass through the normal MemTable insert path, including the
//! follower's **own** WAL append: a follower crash right after an ack
//! replays the acked records from its local log, which is what makes an
//! ack a durability promise the leader's semi-sync/quorum modes rely on.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use miodb_common::proto::{self, Request, Response};
use miodb_common::{fault, Error, Result, RoleState, Stats};
use miodb_core::{MioDb, MioOptions};
use miodb_pmem::PmemPool;
use parking_lot::Mutex;

use crate::detector::FailureDetector;

/// Follower tunables.
#[derive(Debug, Clone)]
pub struct FollowerOptions {
    /// Read timeout on the stream; also the poll interval for stop/drain
    /// flags and the quiet period that ends a drain.
    pub read_timeout: Duration,
    /// Initial reconnect backoff (doubles up to `max_backoff`).
    pub reconnect_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Failure-detector deadline: a leader silent (no frames while
    /// connected, or unreachable across reconnects) for this long is
    /// declared dead and the loop ends in [`FollowerState::LeaderDead`].
    pub leader_dead_timeout: Duration,
}

impl Default for FollowerOptions {
    fn default() -> FollowerOptions {
        FollowerOptions {
            read_timeout: Duration::from_millis(100),
            reconnect_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            leader_dead_timeout: Duration::from_secs(3),
        }
    }
}

/// Where the apply loop is in its lifecycle (terminal states tell the
/// supervisor what to do next).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FollowerState {
    /// Trying to reach the leader.
    Connecting = 0,
    /// Subscribed and applying.
    Streaming = 1,
    /// Stopped/drained on request (terminal).
    Stopped = 2,
    /// The leader's failure detector fired (terminal): run an election.
    LeaderDead = 3,
    /// The subscribed-to node is fenced by a newer epoch (terminal):
    /// find the real leader.
    StaleLeader = 4,
    /// The leader truncated past our offset, or our history diverged
    /// from the new leader's (terminal): rebuild from a snapshot.
    NeedsSnapshot = 5,
}

impl FollowerState {
    fn from_u8(v: u8) -> FollowerState {
        match v {
            0 => FollowerState::Connecting,
            1 => FollowerState::Streaming,
            3 => FollowerState::LeaderDead,
            4 => FollowerState::StaleLeader,
            5 => FollowerState::NeedsSnapshot,
            _ => FollowerState::Stopped,
        }
    }

    /// Terminal states: the apply thread has exited (or is about to).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, FollowerState::Connecting | FollowerState::Streaming)
    }
}

/// Why one streaming session ended.
enum StreamEnd {
    /// Drain mode: the stream is quiet/closed and everything received
    /// has been applied.
    Drained,
    /// The leader truncated past our offset (or our history diverged);
    /// streaming cannot resume.
    SnapshotRequired,
    /// Stop was requested.
    Stopped,
    /// The peer is deposed or we are fenced: a newer epoch exists.
    StaleLeader(String),
    /// The leader went silent past the detector deadline.
    LeaderDead,
    /// Transport or apply failure; reconnect and resume from `applied`.
    Disconnected(String),
}

/// A running follower apply loop over an engine.
pub struct Follower {
    db: Arc<MioDb>,
    applied: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    state: Arc<AtomicU8>,
    epoch: Arc<AtomicU64>,
    last_error: Arc<Mutex<Option<String>>>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Follower {
    /// Spawns the apply loop against `leader_addr`, resuming from the
    /// engine's current `last_sequence`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the apply thread cannot be spawned
    /// (connection failures are retried inside the loop instead).
    pub fn start(db: Arc<MioDb>, leader_addr: &str, opts: FollowerOptions) -> Result<Follower> {
        Follower::start_with_role(db, leader_addr, opts, None)
    }

    /// Like [`Follower::start`], with a shared [`RoleState`] to keep in
    /// sync: epochs learned from the leader are adopted into it, and its
    /// (possibly newer) epoch rides every ack so a stale leader fences
    /// itself out.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the apply thread cannot be spawned.
    pub fn start_with_role(
        db: Arc<MioDb>,
        leader_addr: &str,
        opts: FollowerOptions,
        role: Option<Arc<RoleState>>,
    ) -> Result<Follower> {
        let applied = Arc::new(AtomicU64::new(db.last_sequence()));
        let stop = Arc::new(AtomicBool::new(false));
        let drain = Arc::new(AtomicBool::new(false));
        let state = Arc::new(AtomicU8::new(FollowerState::Connecting as u8));
        let epoch = Arc::new(AtomicU64::new(role.as_ref().map_or(0, |r| r.epoch())));
        let last_error: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let ctx = LoopCtx {
            db: db.clone(),
            addr: leader_addr.to_string(),
            opts,
            applied: applied.clone(),
            stop: stop.clone(),
            drain: drain.clone(),
            state: state.clone(),
            epoch: epoch.clone(),
            role,
            last_error: last_error.clone(),
        };
        let thread = std::thread::Builder::new()
            .name("miodb-follower".to_string())
            .spawn(move || ctx.run())
            .map_err(Error::Io)?;
        Ok(Follower {
            db,
            applied,
            stop,
            drain,
            state,
            epoch,
            last_error,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The replica engine.
    pub fn engine(&self) -> &Arc<MioDb> {
        &self.db
    }

    /// Highest contiguously applied (and acknowledged) sequence number.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Where the loop is in its lifecycle.
    pub fn state(&self) -> FollowerState {
        FollowerState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// The highest epoch this follower has adopted.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// True when the leader's log has truncated past this follower's
    /// offset: streaming cannot resume and the follower must be rebuilt
    /// from a snapshot ([`bootstrap_from_leader`]).
    pub fn needs_snapshot(&self) -> bool {
        self.state() == FollowerState::NeedsSnapshot
    }

    /// Most recent stream error, for diagnostics.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Failover: drains in-flight records from the (presumed dying)
    /// leader stream, stops the loop and returns the final applied
    /// offset. The caller flips its server role to leader afterwards;
    /// new writes continue the sequence numbering from this offset.
    pub fn promote(self) -> u64 {
        self.drain.store(true, Ordering::Release);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
        self.applied.load(Ordering::Acquire)
    }

    /// Stops the apply loop without draining (shutdown path).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Everything the apply thread owns.
struct LoopCtx {
    db: Arc<MioDb>,
    addr: String,
    opts: FollowerOptions,
    applied: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    state: Arc<AtomicU8>,
    epoch: Arc<AtomicU64>,
    role: Option<Arc<RoleState>>,
    last_error: Arc<Mutex<Option<String>>>,
}

impl LoopCtx {
    fn done(&self) -> bool {
        self.stop.load(Ordering::Acquire) || self.drain.load(Ordering::Acquire)
    }

    fn set_state(&self, s: FollowerState) {
        self.state.store(s as u8, Ordering::Release);
    }

    /// The epoch this follower believes in: the max of what it adopted
    /// from streams and what the shared role state knows (an election
    /// may have advanced the latter behind our back).
    fn known_epoch(&self) -> u64 {
        let local = self.epoch.load(Ordering::Acquire);
        self.role.as_ref().map_or(local, |r| r.epoch().max(local))
    }

    /// Adopts a (possibly newer) epoch learned from the leader at
    /// `addr`, keeping the shared role state in sync.
    fn adopt_epoch(&self, epoch: u64) {
        let prev = self.epoch.fetch_max(epoch, Ordering::AcqRel);
        if let Some(role) = &self.role {
            if epoch > prev {
                role.observe_epoch(epoch, &self.addr);
            }
            role.set_leader_live(true);
        }
    }

    fn run(&self) {
        let mut backoff = self.opts.reconnect_backoff;
        // When the leader became unreachable (connect failures count
        // toward the death deadline just like in-stream silence).
        let mut unreachable_since: Option<Instant> = None;
        loop {
            if self.stop.load(Ordering::Acquire) {
                self.set_state(FollowerState::Stopped);
                return;
            }
            self.set_state(FollowerState::Connecting);
            let mut established = false;
            match self.stream_once(&mut established) {
                StreamEnd::Drained | StreamEnd::Stopped => {
                    self.set_state(FollowerState::Stopped);
                    return;
                }
                StreamEnd::SnapshotRequired => {
                    self.set_state(FollowerState::NeedsSnapshot);
                    *self.last_error.lock() =
                        Some("replication log truncated past applied offset".to_string());
                    return;
                }
                StreamEnd::StaleLeader(msg) => {
                    self.set_state(FollowerState::StaleLeader);
                    *self.last_error.lock() = Some(msg);
                    return;
                }
                StreamEnd::LeaderDead => {
                    if let Some(role) = &self.role {
                        role.set_leader_live(false);
                    }
                    self.set_state(FollowerState::LeaderDead);
                    *self.last_error.lock() =
                        Some(format!("leader {} silent past deadline", self.addr));
                    return;
                }
                StreamEnd::Disconnected(msg) => {
                    *self.last_error.lock() = Some(msg);
                }
            }
            if self.done() {
                self.set_state(FollowerState::Stopped);
                return;
            }
            if established {
                unreachable_since = None;
            } else {
                let since = *unreachable_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= self.opts.leader_dead_timeout {
                    if let Some(role) = &self.role {
                        role.set_leader_live(false);
                    }
                    self.set_state(FollowerState::LeaderDead);
                    return;
                }
            }
            // Exponential backoff is for a leader we cannot reach; a
            // session that subscribed and later died (leader restart,
            // injected stream drop) reconnects at the initial delay.
            if established {
                backoff = self.opts.reconnect_backoff;
            }
            // Backoff in small slices so stop/drain stay responsive.
            let until = Instant::now() + backoff;
            while Instant::now() < until && !self.done() {
                std::thread::sleep(Duration::from_millis(5));
            }
            if !established {
                backoff = (backoff * 2).min(self.opts.max_backoff);
            }
        }
    }

    /// One connect → subscribe → stream session. Sets `established` once
    /// the subscribe handshake succeeds.
    fn stream_once(&self, established: &mut bool) -> StreamEnd {
        let stream = match TcpStream::connect(&self.addr) {
            Ok(s) => s,
            Err(e) => {
                // A dead leader during drain means nothing is in flight.
                if self.drain.load(Ordering::Acquire) {
                    return StreamEnd::Drained;
                }
                return StreamEnd::Disconnected(format!("connect {}: {e}", self.addr));
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.opts.read_timeout));
        let Ok(read_half) = stream.try_clone() else {
            return StreamEnd::Disconnected("clone stream".to_string());
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        let detector = FailureDetector::new(self.opts.leader_dead_timeout);

        let from = self.applied.load(Ordering::Acquire);
        let epoch = self.known_epoch();
        if proto::write_request(&mut writer, 1, &Request::ReplSubscribe { from, epoch }).is_err()
            || writer.flush().is_err()
        {
            return StreamEnd::Disconnected("subscribe send".to_string());
        }
        match self.read_response(&mut reader, &detector) {
            Ok(Some(Response::ReplSubscribed {
                log_start,
                last,
                epoch,
            })) => {
                if from + 1 < log_start {
                    return StreamEnd::SnapshotRequired;
                }
                if from > last {
                    // We are *ahead* of the leader: our tail holds
                    // ambiguous writes the group never quorum-acked
                    // (allowed to vanish). Streaming on top would
                    // silently diverge; rebuild from the leader instead.
                    return StreamEnd::SnapshotRequired;
                }
                self.adopt_epoch(epoch);
                *established = true;
            }
            Ok(Some(Response::StaleEpoch { epoch, hint })) => {
                if let Some(role) = &self.role {
                    role.observe_epoch(epoch, &hint);
                }
                self.epoch.fetch_max(epoch, Ordering::AcqRel);
                return StreamEnd::StaleLeader(format!(
                    "subscribe refused: peer fenced at epoch {epoch}"
                ));
            }
            Ok(Some(Response::NotLeader { epoch, hint })) => {
                if let Some(role) = &self.role {
                    role.observe_epoch(epoch, &hint);
                }
                return StreamEnd::StaleLeader(format!(
                    "subscribe refused: peer is a follower (leader hint {hint:?})"
                ));
            }
            Ok(Some(Response::Err(msg))) => {
                return StreamEnd::Disconnected(format!("subscribe refused: {msg}"));
            }
            Ok(Some(other)) => {
                return StreamEnd::Disconnected(format!("unexpected subscribe reply: {other:?}"));
            }
            Ok(None) => return StreamEnd::Stopped,
            Err(end) => return end,
        }

        loop {
            match self.read_response(&mut reader, &detector) {
                Ok(Some(Response::ReplRecords { epoch, batches })) => {
                    let known = self.known_epoch();
                    if epoch < known {
                        // The node we stream from was deposed (we learned
                        // a newer epoch, e.g. via an election we voted
                        // in); refuse its records.
                        return StreamEnd::StaleLeader(format!(
                            "records at stale epoch {epoch} < {known}"
                        ));
                    }
                    self.adopt_epoch(epoch);
                    if let Err(end) = self.apply_batches(&batches) {
                        return end;
                    }
                    // Ack even empty heartbeats: the offset report is the
                    // follower → leader pulse, and the epoch on it is the
                    // deposed-leader discovery channel.
                    let offset = self.applied.load(Ordering::Acquire);
                    let epoch = self.known_epoch();
                    if proto::write_request(&mut writer, 0, &Request::ReplAck { offset, epoch })
                        .is_err()
                        || writer.flush().is_err()
                    {
                        return self.disconnect("ack send failed");
                    }
                }
                Ok(Some(Response::StaleEpoch { epoch, hint })) => {
                    if let Some(role) = &self.role {
                        role.observe_epoch(epoch, &hint);
                    }
                    self.epoch.fetch_max(epoch, Ordering::AcqRel);
                    return StreamEnd::StaleLeader(format!("stream fenced at epoch {epoch}"));
                }
                Ok(Some(Response::Err(msg))) if msg.contains("truncated") => {
                    return StreamEnd::SnapshotRequired;
                }
                Ok(Some(other)) => {
                    return self.disconnect(&format!("unexpected stream frame: {other:?}"));
                }
                Ok(None) => return StreamEnd::Stopped,
                Err(end) => return end,
            }
        }
    }

    /// Reads one response frame, folding timeouts into flag polling and
    /// feeding the leader failure detector. `Ok(None)` means stop was
    /// requested; `Err` carries the session outcome.
    fn read_response(
        &self,
        reader: &mut BufReader<TcpStream>,
        detector: &FailureDetector,
    ) -> std::result::Result<Option<Response>, StreamEnd> {
        loop {
            // Checked before every read, not just on quiet timeouts: a
            // leader heart-beating faster than the read timeout would
            // otherwise starve stop requests indefinitely.
            if self.stop.load(Ordering::Acquire) {
                return Ok(None);
            }
            match proto::read_frame(reader) {
                Ok(Some(frame)) => {
                    detector.observe();
                    return match Response::decode(frame.opcode, &frame.body) {
                        Ok(resp) => Ok(Some(resp)),
                        Err(e) => Err(StreamEnd::Disconnected(format!("bad frame: {e}"))),
                    };
                }
                Ok(None) => {
                    // Clean EOF: during drain this is the natural end.
                    return Err(if self.drain.load(Ordering::Acquire) {
                        StreamEnd::Drained
                    } else {
                        StreamEnd::Disconnected("leader closed stream".to_string())
                    });
                }
                Err(Error::Io(ref e)) if proto::is_timeout(e) => {
                    if self.stop.load(Ordering::Acquire) {
                        return Ok(None);
                    }
                    // Quiet for a full read timeout with drain requested:
                    // nothing more is in flight.
                    if self.drain.load(Ordering::Acquire) {
                        return Err(StreamEnd::Drained);
                    }
                    // A connected-but-silent leader (hung process, iced
                    // network) is as dead as an unreachable one.
                    if detector.is_dead() {
                        return Err(StreamEnd::LeaderDead);
                    }
                }
                Err(e) => {
                    return Err(if self.drain.load(Ordering::Acquire) {
                        StreamEnd::Drained
                    } else {
                        StreamEnd::Disconnected(format!("stream read: {e}"))
                    });
                }
            }
        }
    }

    /// Decodes and applies shipped batches, advancing the applied offset.
    fn apply_batches(&self, batches: &[proto::ReplBatch]) -> std::result::Result<(), StreamEnd> {
        for batch in batches {
            // Injected apply stall/failure: a Latency policy sleeps here
            // (acks stop advancing, semi-sync writers feel it); a Fail
            // policy aborts the session before anything is applied, so
            // the records are re-shipped on reconnect.
            if fault::hit(fault::points::REPL_APPLY_STALL).is_some() {
                return Err(self.disconnect("injected apply failure"));
            }
            let applied = self.applied.load(Ordering::Acquire);
            if batch.seq_last <= applied {
                continue; // duplicate delivery after a resubscribe
            }
            let records = match miodb_wal::decode_record_bytes(&batch.bytes) {
                Ok(r) => r,
                Err(e) => return Err(self.disconnect(&format!("bad shipped record: {e}"))),
            };
            let fresh: Vec<miodb_wal::WalRecord> =
                records.into_iter().filter(|r| r.seq > applied).collect();
            if let Err(e) = self.db.apply_replicated(&fresh) {
                return Err(self.disconnect(&format!("apply failed: {e}")));
            }
            self.applied.store(batch.seq_last, Ordering::Release);
        }
        Ok(())
    }

    fn disconnect(&self, msg: &str) -> StreamEnd {
        if self.drain.load(Ordering::Acquire) {
            StreamEnd::Drained
        } else {
            StreamEnd::Disconnected(msg.to_string())
        }
    }
}

/// Fetches a pool snapshot image from a leader (one `SnapshotFetch`
/// round trip).
///
/// # Errors
///
/// Returns [`Error::Io`] for transport failures and [`Error::Background`]
/// when the leader refuses (e.g. snapshot serving not configured).
pub fn fetch_snapshot(leader_addr: &str) -> Result<Vec<u8>> {
    let stream = TcpStream::connect(leader_addr).map_err(Error::Io)?;
    let _ = stream.set_nodelay(true);
    let read_half = stream.try_clone().map_err(Error::Io)?;
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    proto::write_request(&mut writer, 1, &Request::SnapshotFetch).map_err(Error::Io)?;
    writer.flush().map_err(Error::Io)?;
    match proto::read_frame(&mut reader)? {
        Some(frame) => match Response::decode(frame.opcode, &frame.body)? {
            Response::Snapshot(bytes) => Ok(bytes),
            Response::Err(msg) => Err(Error::Background(format!("snapshot refused: {msg}"))),
            other => Err(Error::Background(format!(
                "unexpected snapshot reply: {other:?}"
            ))),
        },
        None => Err(Error::Io(std::io::Error::other(
            "leader closed connection during snapshot fetch",
        ))),
    }
}

/// Cold-follower catch-up: fetches a leader snapshot, restores it into a
/// fresh NVM pool and recovers an engine from it. The snapshot's WAL tail
/// replays during recovery, so the returned engine's `last_sequence` is
/// the exact offset to subscribe from.
///
/// # Errors
///
/// Returns transport errors from the fetch, [`Error::Corruption`] for an
/// unreadable image, and recovery errors from the engine.
pub fn bootstrap_from_leader(leader_addr: &str, opts: MioOptions) -> Result<MioDb> {
    if fault::hit(fault::points::REPL_SNAPSHOT).is_some() {
        return Err(Error::Io(std::io::Error::other(
            "injected snapshot catch-up failure",
        )));
    }
    let bytes = fetch_snapshot(leader_addr)?;
    static BOOTSTRAPS: AtomicU64 = AtomicU64::new(0);
    let n = BOOTSTRAPS.fetch_add(1, Ordering::Relaxed);
    let mut path = std::env::temp_dir();
    path.push(format!("miodb-bootstrap-{}-{n}.snap", std::process::id()));
    let result = (|| {
        std::fs::write(&path, &bytes).map_err(Error::Io)?;
        let pool = PmemPool::restore_from_file(&path, opts.nvm_device, Arc::new(Stats::new()))?;
        MioDb::recover(pool, opts)
    })();
    let _ = std::fs::remove_file(&path);
    result
}

/// Serializes a leader engine's pool for `SnapshotFetch` serving: a
/// quiesced [`MioDb::snapshot`] into a temp file, read back and removed.
///
/// # Errors
///
/// Returns I/O errors from the snapshot file.
pub fn engine_snapshot_bytes(db: &MioDb) -> Result<Vec<u8>> {
    if fault::hit(fault::points::REPL_SNAPSHOT).is_some() {
        return Err(Error::Io(std::io::Error::other(
            "injected snapshot serve failure",
        )));
    }
    static SERVES: AtomicU64 = AtomicU64::new(0);
    let n = SERVES.fetch_add(1, Ordering::Relaxed);
    let mut path = std::env::temp_dir();
    path.push(format!("miodb-snap-serve-{}-{n}.snap", std::process::id()));
    let result = db
        .snapshot(&path)
        .and_then(|()| std::fs::read(&path).map_err(Error::Io));
    let _ = std::fs::remove_file(&path);
    result
}
