//! WAL-shipping replication for MioDB.
//!
//! The leader taps its group-commit pipeline: every committed WAL record
//! (single op or sealed commit group) is published — as the exact framed
//! bytes the WAL persisted, one CRC covering NVM, wire and replay — into
//! an in-memory [`ReplicationLog`]. Per-subscriber server threads stream
//! those records to followers, which replay them through the normal
//! MemTable insert path (including the follower's own WAL) and ack a
//! monotonic applied offset.
//!
//! Pieces:
//!
//! - [`ReplicationLog`]: bounded, condvar-woken record log on the leader.
//! - [`Replicator`]: the leader hub implementing the engine's
//!   `ReplicationSink` seam — publish under the commit mutex,
//!   semi-sync/quorum `wait_committed` after it, per-subscriber ack
//!   cursors, eager truncation to the minimum durable cursor, and a
//!   follower-lag histogram.
//! - [`Follower`]: the apply loop — subscribe/replay/ack with reconnect
//!   backoff, epoch adoption and stale-leader refusal, a leader failure
//!   detector, [`Follower::promote`] for drain-then-lead failover, and
//!   snapshot catch-up via [`bootstrap_from_leader`].
//! - [`FailureDetector`]: graded (alive/suspect/dead) deadline detection
//!   fed by frame and ack arrivals on both ends of a stream.
//! - [`try_elect`]: probe-then-vote leader election with epoch fencing;
//!   quorum-acked writes survive any winner it can produce.
//!
//! Ack levels ([`AckLevel`]): `Async` never blocks writers; `SemiSync`
//! holds each PUT/DELETE/BATCH until one follower acks its sequence;
//! `Quorum` holds it until a majority of the group has it durably
//! applied, degrading to the typed `QuorumLost` error when a majority is
//! unreachable. Timeouts surface as `MaybeApplied` — locally durable,
//! replication unknown — so the durable-prefix oracle stays honest
//! across failover.

pub mod detector;
pub mod election;
pub mod follower;
pub mod log;
pub mod replicator;

pub use detector::{FailureDetector, Liveness};
pub use election::{probe_peers, try_elect, vote_rpc, ElectionOutcome, PeerStatus};
pub use follower::{
    bootstrap_from_leader, engine_snapshot_bytes, fetch_snapshot, Follower, FollowerOptions,
    FollowerState,
};
pub use log::{Fetched, ReplEntry, ReplicationLog};
pub use miodb_common::{majority, AckLevel, Role, RoleState};
pub use replicator::{Replicator, ReplicatorOptions};
