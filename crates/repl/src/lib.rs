//! WAL-shipping replication for MioDB.
//!
//! The leader taps its group-commit pipeline: every committed WAL record
//! (single op or sealed commit group) is published — as the exact framed
//! bytes the WAL persisted, one CRC covering NVM, wire and replay — into
//! an in-memory [`ReplicationLog`]. Per-subscriber server threads stream
//! those records to followers, which replay them through the normal
//! MemTable insert path (including the follower's own WAL) and ack a
//! monotonic applied offset.
//!
//! Pieces:
//!
//! - [`ReplicationLog`]: bounded, condvar-woken record log on the leader.
//! - [`Replicator`]: the leader hub implementing the engine's
//!   `ReplicationSink` seam — publish under the commit mutex, semi-sync
//!   `wait_committed` after it, ack tracking and follower-lag histogram.
//! - [`Follower`]: the apply loop — subscribe/replay/ack with reconnect
//!   backoff, [`Follower::promote`] for drain-then-lead failover, and
//!   snapshot catch-up via [`bootstrap_from_leader`].
//!
//! Ack levels ([`AckLevel`]): `Async` never blocks writers; `SemiSync`
//! holds each PUT/DELETE/BATCH until a follower acks its sequence, and a
//! timeout surfaces as `MaybeApplied` — locally durable, replication
//! unknown — so the durable-prefix oracle stays honest across failover.

pub mod follower;
pub mod log;
pub mod replicator;

pub use follower::{
    bootstrap_from_leader, engine_snapshot_bytes, fetch_snapshot, Follower, FollowerOptions,
};
pub use log::{Fetched, ReplEntry, ReplicationLog};
pub use miodb_common::AckLevel;
pub use replicator::{Replicator, ReplicatorOptions};
