//! The leveled SSTable hierarchy and its compaction machinery.
//!
//! This models LevelDB's version set: an overlapping `L0` fed by MemTable
//! flushes, and bounded, non-overlapping levels `L1..Ln` maintained by
//! background merges. Unlike MioDB's elastic buffer, **levels here have
//! capacity limits** — the property that produces write stalls (`L0`
//! slowdown/stop) and multi-level write amplification in the baselines.

use std::sync::Arc;
use std::time::Instant;

use miodb_common::{Result, Stats};
use miodb_skiplist::iter::OwnedEntry;
use parking_lot::{Mutex, RwLock};

use crate::merge_iter::{dedup_newest, KWayMerge};
use crate::sstable::{SsTableBuilder, TableMeta};
use crate::storage::TableStore;

/// Tuning knobs for the LSM substrate.
///
/// Defaults are the paper's LevelDB configuration scaled by the dataset
/// scale factor (table size 64 MB → 2 MB, amplification factor 10).
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Target SSTable size; compaction outputs split at this size.
    pub table_bytes: usize,
    /// Data block size (device page granularity).
    pub block_bytes: usize,
    /// Bloom filter density for tables.
    pub bloom_bits_per_key: usize,
    /// Number of `L0` tables that triggers a compaction.
    pub l0_compaction_trigger: usize,
    /// Number of `L0` tables at which writers are slowed down.
    pub l0_slowdown_trigger: usize,
    /// Number of `L0` tables at which writers stop entirely.
    pub l0_stop_trigger: usize,
    /// Byte budget of `L1`; level `i` holds `amplification_factor^(i-1)`
    /// times more.
    pub level1_max_bytes: u64,
    /// Per-level growth factor (10 in LevelDB and the paper).
    pub amplification_factor: u64,
    /// Number of levels including `L0`.
    pub max_levels: usize,
}

impl Default for LsmOptions {
    fn default() -> LsmOptions {
        LsmOptions {
            table_bytes: 2 << 20,
            block_bytes: 4096,
            bloom_bits_per_key: 10,
            l0_compaction_trigger: 4,
            l0_slowdown_trigger: 8,
            l0_stop_trigger: 12,
            level1_max_bytes: 8 << 20,
            amplification_factor: 10,
            max_levels: 7,
        }
    }
}

impl LsmOptions {
    /// Byte budget of `level` (`L0` is count-limited, not byte-limited).
    pub fn level_target_bytes(&self, level: usize) -> u64 {
        if level == 0 {
            u64::MAX
        } else {
            self.level1_max_bytes
                .saturating_mul(self.amplification_factor.saturating_pow(level as u32 - 1))
        }
    }
}

/// The leveled table hierarchy.
///
/// `L0` is ordered newest-first and tables may overlap; `L1+` are sorted by
/// smallest key and non-overlapping. One compaction runs at a time.
pub struct LsmCore {
    opts: LsmOptions,
    store: Arc<TableStore>,
    stats: Arc<Stats>,
    levels: RwLock<Vec<Vec<Arc<TableMeta>>>>,
    compaction_lock: Mutex<Vec<usize>>, // round-robin pointers per level
}

impl std::fmt::Debug for LsmCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmCore")
            .field("tables_per_level", &self.tables_per_level())
            .finish()
    }
}

impl LsmCore {
    /// Creates an empty hierarchy over `store`.
    pub fn new(store: Arc<TableStore>, opts: LsmOptions) -> LsmCore {
        let stats = store.stats().clone();
        let levels = vec![Vec::new(); opts.max_levels];
        LsmCore {
            compaction_lock: Mutex::new(vec![0; opts.max_levels]),
            opts,
            store,
            stats,
            levels: RwLock::new(levels),
        }
    }

    /// The options in use.
    pub fn options(&self) -> &LsmOptions {
        &self.opts
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<TableStore> {
        &self.store
    }

    /// Number of tables currently in `L0`.
    pub fn l0_count(&self) -> usize {
        self.levels.read()[0].len()
    }

    /// Table counts per level, top to bottom.
    pub fn tables_per_level(&self) -> Vec<usize> {
        self.levels.read().iter().map(Vec::len).collect()
    }

    /// Total serialized bytes per level.
    pub fn bytes_per_level(&self) -> Vec<u64> {
        self.levels
            .read()
            .iter()
            .map(|lvl| lvl.iter().map(|t| t.bytes).sum())
            .collect()
    }

    /// Builds one or more SSTables from a multi-version-ordered entry
    /// stream and installs them at the front of `L0` (newest first).
    ///
    /// # Errors
    ///
    /// Propagates build failures; an empty stream is a no-op.
    pub fn ingest_sorted_run(
        &self,
        entries: impl Iterator<Item = OwnedEntry>,
    ) -> Result<Vec<Arc<TableMeta>>> {
        let tables = self.build_tables(entries)?;
        let mut levels = self.levels.write();
        for t in tables.iter().rev() {
            levels[0].insert(0, t.clone());
        }
        Ok(tables)
    }

    /// Serializes an entry stream into size-split tables without
    /// installing them.
    fn build_tables(
        &self,
        entries: impl Iterator<Item = OwnedEntry>,
    ) -> Result<Vec<Arc<TableMeta>>> {
        let mut out = Vec::new();
        let mut builder: Option<SsTableBuilder> = None;
        for e in entries {
            let b = builder.get_or_insert_with(|| {
                SsTableBuilder::new(self.opts.block_bytes, self.opts.bloom_bits_per_key)
            });
            b.add(&e.key, &e.value, e.seq, e.kind);
            if b.estimated_bytes() >= self.opts.table_bytes {
                let meta = builder.take().unwrap().finish(&self.store, &self.stats)?;
                out.push(Arc::new(meta));
            }
        }
        if let Some(b) = builder {
            if b.num_entries() > 0 {
                out.push(Arc::new(b.finish(&self.store, &self.stats)?));
            }
        }
        Ok(out)
    }

    /// Point lookup through the hierarchy: `L0` newest-first, then binary
    /// search in each bounded level. Returns tombstones so callers layered
    /// above (MemTables) can resolve deletion.
    ///
    /// # Errors
    ///
    /// Propagates table corruption.
    pub fn get(&self, key: &[u8]) -> Result<Option<OwnedEntry>> {
        let levels = self.levels.read().clone();
        for (i, level) in levels.iter().enumerate() {
            if i == 0 {
                for t in level {
                    if key < t.smallest.as_slice() || key > t.largest.as_slice() {
                        continue;
                    }
                    if !t.reader.may_contain(key) {
                        self.stats
                            .bloom_skips
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        continue;
                    }
                    if let Some(e) = t.reader.get(key, &self.stats)? {
                        return Ok(Some(e));
                    }
                    self.stats
                        .bloom_false_positives
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            } else {
                let idx = level.partition_point(|t| t.largest.as_slice() < key);
                if idx < level.len() && level[idx].smallest.as_slice() <= key {
                    let t = &level[idx];
                    if t.reader.may_contain(key) {
                        if let Some(e) = t.reader.get(key, &self.stats)? {
                            return Ok(Some(e));
                        }
                        self.stats
                            .bloom_false_positives
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    } else {
                        self.stats
                            .bloom_skips
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(None)
    }

    /// Iterator sources for a scan starting at `start`, newest level
    /// first — feed into [`KWayMerge`]/[`dedup_newest`].
    pub fn scan_sources(&self, start: &[u8]) -> Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> {
        let levels = self.levels.read().clone();
        let mut out: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> = Vec::new();
        for (i, level) in levels.iter().enumerate() {
            if i == 0 {
                for t in level {
                    out.push(Box::new(t.reader.iter_from(start, self.stats.clone())));
                }
            } else {
                // Non-overlapping: chain the tables from the first that can
                // contain `start`.
                let idx = level.partition_point(|t| t.largest.as_slice() < start);
                let stats = self.stats.clone();
                let tables: Vec<Arc<TableMeta>> = level[idx..].to_vec();
                let start = start.to_vec();
                let iter = tables.into_iter().enumerate().flat_map(move |(j, t)| {
                    if j == 0 {
                        t.reader.iter_from(&start, stats.clone())
                    } else {
                        t.reader.iter(stats.clone())
                    }
                });
                out.push(Box::new(iter));
            }
        }
        out
    }

    /// The level most in need of compaction, if any: `L0` past its trigger,
    /// or the most over-budget bounded level.
    pub fn needs_compaction(&self) -> Option<usize> {
        let levels = self.levels.read();
        if levels[0].len() >= self.opts.l0_compaction_trigger {
            return Some(0);
        }
        let mut worst: Option<(usize, f64)> = None;
        for (i, level) in levels
            .iter()
            .enumerate()
            .skip(1)
            .take(self.opts.max_levels - 2)
        {
            let bytes: u64 = level.iter().map(|t| t.bytes).sum();
            let ratio = bytes as f64 / self.opts.level_target_bytes(i) as f64;
            if ratio > 1.0 && worst.is_none_or(|(_, w)| ratio > w) {
                worst = Some((i, ratio));
            }
        }
        worst.map(|(i, _)| i)
    }

    /// Runs at most one compaction. Returns `true` if work was done.
    ///
    /// # Errors
    ///
    /// Propagates build/read failures.
    pub fn run_one_compaction(&self) -> Result<bool> {
        let mut ptrs = self.compaction_lock.lock();
        let Some(level) = self.needs_compaction() else {
            return Ok(false);
        };
        let t0 = Instant::now();

        // Select inputs under the read lock.
        let (inputs_this, inputs_next, out_level) = {
            let levels = self.levels.read();
            if level == 0 {
                let this: Vec<Arc<TableMeta>> = levels[0].clone();
                let (smallest, largest) = key_range(&this);
                let next = overlapping(&levels[1], &smallest, &largest);
                (this, next, 1)
            } else {
                let pick = ptrs[level] % levels[level].len();
                ptrs[level] = ptrs[level].wrapping_add(1);
                let t = levels[level][pick].clone();
                let next = overlapping(&levels[level + 1], &t.smallest, &t.largest);
                (vec![t], next, level + 1)
            }
        };

        // Merge: inputs from the upper level are newer; within L0 the list
        // is already newest-first.
        let mut sources: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> = Vec::new();
        for t in &inputs_this {
            sources.push(Box::new(t.reader.iter(self.stats.clone())));
        }
        for t in &inputs_next {
            sources.push(Box::new(t.reader.iter(self.stats.clone())));
        }
        let drop_tombstones = out_level == self.opts.max_levels - 1;
        let merged = dedup_newest(KWayMerge::new(sources), drop_tombstones);
        let outputs = self.build_tables(merged)?;

        // Install: replace inputs with outputs.
        {
            let mut levels = self.levels.write();
            let this_ids: Vec<u64> = inputs_this.iter().map(|t| t.id).collect();
            let next_ids: Vec<u64> = inputs_next.iter().map(|t| t.id).collect();
            levels[level].retain(|t| !this_ids.contains(&t.id));
            levels[out_level].retain(|t| !next_ids.contains(&t.id));
            for t in &outputs {
                levels[out_level].push(t.clone());
            }
            levels[out_level].sort_by(|a, b| a.smallest.cmp(&b.smallest));
        }
        for t in inputs_this.iter().chain(inputs_next.iter()) {
            self.store.delete(t.id);
        }

        Stats::add_time(&self.stats.copy_compaction_ns, t0.elapsed());
        self.stats
            .copy_compactions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(true)
    }

    /// Merges a sorted run straight into `level` (MatrixKV's column
    /// compaction path), bypassing `L0`.
    ///
    /// # Errors
    ///
    /// Propagates build/read failures.
    pub fn ingest_run_to_level(
        &self,
        entries: impl Iterator<Item = OwnedEntry> + Send + 'static,
        level: usize,
    ) -> Result<()> {
        let _ptrs = self.compaction_lock.lock();
        let t0 = Instant::now();
        let mut run = entries.peekable();
        let Some(first) = run.peek() else {
            return Ok(());
        };
        let smallest = first.key.clone();
        // The run is sorted, so its overlap range is [first, last]; we do
        // not know `last` without draining, so conservatively merge with
        // tables overlapping from `smallest` onward, bounded after draining.
        let buffered: Vec<OwnedEntry> = run.collect();
        let largest = buffered.last().unwrap().key.clone();
        let inputs = {
            let levels = self.levels.read();
            overlapping(&levels[level], &smallest, &largest)
        };
        let mut sources: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> =
            vec![Box::new(buffered.into_iter())];
        for t in &inputs {
            sources.push(Box::new(t.reader.iter(self.stats.clone())));
        }
        let drop_tombstones = level == self.opts.max_levels - 1;
        let merged = dedup_newest(KWayMerge::new(sources), drop_tombstones);
        let outputs = self.build_tables(merged)?;
        {
            let mut levels = self.levels.write();
            let ids: Vec<u64> = inputs.iter().map(|t| t.id).collect();
            levels[level].retain(|t| !ids.contains(&t.id));
            for t in &outputs {
                levels[level].push(t.clone());
            }
            levels[level].sort_by(|a, b| a.smallest.cmp(&b.smallest));
        }
        for t in &inputs {
            self.store.delete(t.id);
        }
        Stats::add_time(&self.stats.copy_compaction_ns, t0.elapsed());
        self.stats
            .copy_compactions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Runs compactions until none is needed (used by `wait_idle`).
    ///
    /// # Errors
    ///
    /// Propagates compaction failures.
    pub fn compact_to_quiescence(&self) -> Result<()> {
        while self.run_one_compaction()? {}
        Ok(())
    }
}

fn key_range(tables: &[Arc<TableMeta>]) -> (Vec<u8>, Vec<u8>) {
    let mut smallest = tables[0].smallest.clone();
    let mut largest = tables[0].largest.clone();
    for t in &tables[1..] {
        if t.smallest < smallest {
            smallest = t.smallest.clone();
        }
        if t.largest > largest {
            largest = t.largest.clone();
        }
    }
    (smallest, largest)
}

fn overlapping(level: &[Arc<TableMeta>], smallest: &[u8], largest: &[u8]) -> Vec<Arc<TableMeta>> {
    level
        .iter()
        .filter(|t| !(t.largest.as_slice() < smallest || t.smallest.as_slice() > largest))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::OpKind;
    use miodb_pmem::DeviceModel;

    fn entry(i: u32, seq: u64) -> OwnedEntry {
        OwnedEntry {
            key: format!("key{i:06}").into_bytes(),
            value: vec![b'v'; 100],
            seq,
            kind: OpKind::Put,
        }
    }

    fn core() -> LsmCore {
        let stats = Arc::new(Stats::new());
        let store = TableStore::new(DeviceModel::ssd_unthrottled(), stats);
        LsmCore::new(
            store,
            LsmOptions {
                table_bytes: 16 * 1024,
                level1_max_bytes: 64 * 1024,
                ..LsmOptions::default()
            },
        )
    }

    #[test]
    fn ingest_and_get() {
        let c = core();
        c.ingest_sorted_run((0..100).map(|i| entry(i, i as u64 + 1)))
            .unwrap();
        assert!(c.l0_count() > 0);
        let e = c.get(b"key000042").unwrap().unwrap();
        assert_eq!(e.seq, 43);
        assert!(c.get(b"nope").unwrap().is_none());
    }

    #[test]
    fn l0_newest_wins() {
        let c = core();
        c.ingest_sorted_run(std::iter::once(entry(7, 1))).unwrap();
        c.ingest_sorted_run(std::iter::once(OwnedEntry {
            value: b"newer".to_vec(),
            ..entry(7, 2)
        }))
        .unwrap();
        let e = c.get(b"key000007").unwrap().unwrap();
        assert_eq!(e.value, b"newer");
        assert_eq!(e.seq, 2);
    }

    #[test]
    fn l0_compaction_moves_to_l1() {
        let c = core();
        for round in 0..c.options().l0_compaction_trigger {
            c.ingest_sorted_run((0..50).map(|i| entry(i, (round * 50 + i as usize) as u64 + 1)))
                .unwrap();
        }
        assert_eq!(c.needs_compaction(), Some(0));
        assert!(c.run_one_compaction().unwrap());
        let counts = c.tables_per_level();
        assert_eq!(counts[0], 0, "L0 drained");
        assert!(counts[1] > 0, "L1 populated");
        // Data survives and newest version wins.
        let e = c.get(b"key000010").unwrap().unwrap();
        assert!(e.seq > 150);
    }

    #[test]
    fn deep_compaction_cascades() {
        let c = core();
        // Enough data to overflow L1 (64 KiB): ~40 runs of 50 x 100 B.
        let mut seq = 0u64;
        for _ in 0..40 {
            let mut batch: Vec<OwnedEntry> = (0..50)
                .map(|i| {
                    seq += 1;
                    entry(i * 13 % 997, seq)
                })
                .collect();
            batch.sort_by(|a, b| miodb_common::types::mv_cmp(&a.key, a.seq, &b.key, b.seq));
            c.ingest_sorted_run(batch.into_iter()).unwrap();
            c.compact_to_quiescence().unwrap();
        }
        let counts = c.tables_per_level();
        assert!(counts[2] > 0 || counts[1] > 0, "levels: {counts:?}");
        assert!(c.needs_compaction().is_none());
        // WA: total device writes exceed unique data (multi-level rewrites).
        let snap = c.store().stats().snapshot();
        assert!(snap.ssd_bytes_written > 0);
    }

    #[test]
    fn tombstones_drop_at_bottom() {
        let stats = Arc::new(Stats::new());
        let store = TableStore::new(DeviceModel::ssd_unthrottled(), stats);
        let c = LsmCore::new(
            store,
            LsmOptions {
                table_bytes: 8 * 1024,
                level1_max_bytes: 64, // force immediate L1 -> bottom cascade
                max_levels: 3,        // bottom = L2
                l0_compaction_trigger: 1,
                ..LsmOptions::default()
            },
        );
        c.ingest_sorted_run(std::iter::once(entry(1, 1))).unwrap();
        c.compact_to_quiescence().unwrap();
        c.ingest_sorted_run(std::iter::once(OwnedEntry {
            value: Vec::new(),
            kind: OpKind::Delete,
            ..entry(1, 2)
        }))
        .unwrap();
        c.compact_to_quiescence().unwrap();
        // Eventually the tombstone and the value both vanish at the bottom.
        let total: u64 = c
            .tables_per_level()
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let levels = c.levels.read();
                levels[i].iter().map(|t| t.num_entries).sum::<u64>()
            })
            .sum();
        assert_eq!(total, 0, "tables: {:?}", c.tables_per_level());
        assert!(c.get(b"key000001").unwrap().is_none());
    }

    #[test]
    fn scan_sources_merge_correctly() {
        let c = core();
        c.ingest_sorted_run((0..30).map(|i| entry(i * 2, i as u64 + 1)))
            .unwrap();
        c.ingest_sorted_run((0..30).map(|i| entry(i * 2 + 1, 100 + i as u64)))
            .unwrap();
        let merged: Vec<OwnedEntry> =
            dedup_newest(KWayMerge::new(c.scan_sources(b"key000010")), true).collect();
        assert_eq!(merged[0].key, b"key000010");
        assert_eq!(merged.len(), 50);
        for w in merged.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn ingest_run_to_level_merges_in_place() {
        let c = core();
        // Seed L1 via a normal compaction.
        for _ in 0..4 {
            c.ingest_sorted_run((0..50).map(|i| entry(i, i as u64 + 1)))
                .unwrap();
        }
        c.compact_to_quiescence().unwrap();
        let seeded_l1 = c.tables_per_level()[1];
        assert!(seeded_l1 > 0);
        // Column-compact a newer run for the lower half of the keyspace.
        let run: Vec<OwnedEntry> = (0..25)
            .map(|i| OwnedEntry {
                value: b"column".to_vec(),
                ..entry(i, 1000 + i as u64)
            })
            .collect();
        c.ingest_run_to_level(run.into_iter(), 1).unwrap();
        assert_eq!(c.get(b"key000010").unwrap().unwrap().value, b"column");
        assert_eq!(c.get(b"key000040").unwrap().unwrap().seq, 41);
        assert_eq!(c.l0_count(), 0, "column compaction bypasses L0");
    }
}
