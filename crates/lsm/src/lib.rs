//! A mini LevelDB-model LSM substrate.
//!
//! The paper's baselines (NoveLSM, MatrixKV) and MioDB's DRAM-NVM-SSD mode
//! all sit on a traditional block-based LSM-tree: serialized SSTables in
//! levels of bounded size, leveled compaction, and the write-stall
//! mechanics (`L0` slowdown/stop triggers, immutable-MemTable waits) whose
//! elimination is MioDB's headline result. This crate implements that
//! substrate from scratch:
//!
//! - [`storage`]: a table store over a modeled block device (NVM- or
//!   SSD-class) with byte accounting for write amplification;
//! - [`sstable`]: the block-based SSTable format — building one *is* the
//!   data serialization the paper measures, reading one is the
//!   deserialization;
//! - [`merge_iter`]: k-way multi-version merging used by compaction and
//!   scans;
//! - [`core`]: [`core::LsmCore`], the leveled table hierarchy with
//!   compaction picking, used directly by the baselines;
//! - [`db`]: [`db::LsmDb`], a complete engine (MemTable + flush +
//!   background compaction + stalls) implementing
//!   [`KvEngine`](miodb_common::KvEngine) — the "LevelDB on NVM/SSD"
//!   reference point.

pub mod core;
pub mod db;
pub mod merge_iter;
pub mod sstable;
pub mod storage;

pub use crate::core::{LsmCore, LsmOptions};
pub use crate::db::LsmDb;
pub use crate::sstable::{SsTableBuilder, SsTableReader};
pub use crate::storage::TableStore;
