//! A complete LevelDB-model engine: MemTable, flush, background
//! compaction, and the write-stall mechanics the paper measures.
//!
//! This is the "traditional LSM on a fast device" reference point. Its
//! write path exhibits exactly the two stall classes of §3.1:
//!
//! - **interval stalls**: the active MemTable fills while the immutable one
//!   is still being serialized to an `L0` SSTable — the writer blocks;
//! - **cumulative stalls**: `L0` reaches its slowdown trigger and every
//!   write is delayed by a fixed pacing sleep; at the stop trigger writes
//!   block until compaction catches up.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb_common::{
    EngineReport, Error, KvEngine, OpKind, Result, ScanEntry, SequenceNumber, Stats,
};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_skiplist::SkipListArena;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::core::{LsmCore, LsmOptions};
use crate::merge_iter::{dedup_newest, KWayMerge};
use crate::storage::TableStore;

/// Pacing delay applied per write while `L0` is past the slowdown trigger.
const SLOWDOWN_SLEEP: Duration = Duration::from_micros(1000);

/// Configuration of the full LSM engine.
#[derive(Debug, Clone)]
pub struct LsmDbOptions {
    /// MemTable capacity (also the flush unit).
    pub memtable_bytes: usize,
    /// The table hierarchy configuration.
    pub lsm: LsmOptions,
    /// Device the SSTables live on (NVM-class for in-memory mode,
    /// SSD-class for tiered mode).
    pub table_device: DeviceModel,
    /// Device the write-ahead log is charged to.
    pub wal_device: DeviceModel,
    /// Engine name for reports.
    pub name: String,
}

impl Default for LsmDbOptions {
    fn default() -> LsmDbOptions {
        LsmDbOptions {
            memtable_bytes: 2 << 20,
            lsm: LsmOptions::default(),
            table_device: DeviceModel::nvm(),
            wal_device: DeviceModel::nvm(),
            name: "LevelDB-NVM".to_string(),
        }
    }
}

struct MemState {
    active: Arc<SkipListArena>,
    imm: Option<Arc<SkipListArena>>,
}

struct DbInner {
    opts: LsmDbOptions,
    core: LsmCore,
    dram: Arc<PmemPool>,
    mem: RwLock<MemState>,
    mem_mutex: Mutex<()>,
    imm_cv: Condvar,
    flush_signal: Mutex<bool>,
    flush_cv: Condvar,
    seq: AtomicU64,
    stats: Arc<Stats>,
    shutdown: AtomicBool,
    background_error: Mutex<Option<String>>,
}

/// The LevelDB-model key-value engine.
pub struct LsmDb {
    inner: Arc<DbInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for LsmDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmDb")
            .field("name", &self.inner.opts.name)
            .field("tables", &self.inner.core.tables_per_level())
            .finish()
    }
}

impl LsmDb {
    /// Opens a fresh engine with the given options and shared statistics.
    ///
    /// # Errors
    ///
    /// Returns an error if the DRAM pool for MemTables cannot be allocated.
    pub fn open(opts: LsmDbOptions, stats: Arc<Stats>) -> Result<LsmDb> {
        let dram = PmemPool::new(
            (opts.memtable_bytes * 6).max(8 << 20),
            DeviceModel::dram(),
            stats.clone(),
        )?;
        let store = TableStore::new(opts.table_device, stats.clone());
        let core = LsmCore::new(store, opts.lsm.clone());
        let active = Arc::new(SkipListArena::new(dram.clone(), opts.memtable_bytes)?);
        let inner = Arc::new(DbInner {
            opts,
            core,
            dram,
            mem: RwLock::new(MemState { active, imm: None }),
            mem_mutex: Mutex::new(()),
            imm_cv: Condvar::new(),
            flush_signal: Mutex::new(false),
            flush_cv: Condvar::new(),
            seq: AtomicU64::new(0),
            stats,
            shutdown: AtomicBool::new(false),
            background_error: Mutex::new(None),
        });
        let mut threads = Vec::new();
        {
            let inner = inner.clone();
            threads.push(std::thread::spawn(move || flush_worker(inner)));
        }
        {
            let inner = inner.clone();
            threads.push(std::thread::spawn(move || compaction_worker(inner)));
        }
        Ok(LsmDb {
            inner,
            threads: Mutex::new(threads),
        })
    }

    /// The table hierarchy, for baselines layered on this engine.
    pub fn core(&self) -> &LsmCore {
        &self.inner.core
    }

    fn write(&self, key: &[u8], value: &[u8], kind: OpKind) -> Result<()> {
        let inner = &*self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::Closed);
        }
        if let Some(msg) = inner.background_error.lock().clone() {
            return Err(Error::Background(msg));
        }
        let guard = inner.mem_mutex.lock();
        inner
            .stats
            .user_bytes_written
            .fetch_add((key.len() + value.len()) as u64, Ordering::Relaxed);

        // L0 pacing (cumulative stalls).
        self.apply_l0_backpressure();

        // WAL append (modeled): sequential write of the record.
        let rec = 17 + key.len() + value.len();
        charge_device_write(&inner.stats, &inner.opts.wal_device, rec);

        let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.insert_with_rotation(guard, key, value, seq, kind)
    }

    fn insert_with_rotation(
        &self,
        mut guard: parking_lot::MutexGuard<'_, ()>,
        key: &[u8],
        value: &[u8],
        seq: SequenceNumber,
        kind: OpKind,
    ) -> Result<()> {
        let inner = &*self.inner;
        loop {
            // Scope the Arc clone to the attempt: holding it across the
            // rotation wait would stall the flush worker's unique-release.
            let r = {
                let active = inner.mem.read().active.clone();
                active.insert(key, value, seq, kind)
            };
            match r {
                Ok(()) => return Ok(()),
                Err(Error::ArenaFull) => {
                    // Rotate. If an immutable MemTable is still being
                    // flushed, this is an interval stall.
                    let t0 = Instant::now();
                    let mut stalled = false;
                    loop {
                        if inner.mem.read().imm.is_none() {
                            break;
                        }
                        stalled = true;
                        inner.imm_cv.wait_for(&mut guard, Duration::from_millis(10));
                        if inner.shutdown.load(Ordering::Acquire) {
                            return Err(Error::Closed);
                        }
                    }
                    if stalled {
                        Stats::add_time(&inner.stats.interval_stall_ns, t0.elapsed());
                        inner
                            .stats
                            .interval_stall_count
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let new_active = Arc::new(SkipListArena::new(
                        inner.dram.clone(),
                        inner
                            .opts
                            .memtable_bytes
                            .max(SkipListArena::capacity_for_entry(key.len(), value.len())),
                    )?);
                    {
                        let mut mem = inner.mem.write();
                        let old = std::mem::replace(&mut mem.active, new_active);
                        mem.imm = Some(old);
                    }
                    let mut flag = inner.flush_signal.lock();
                    *flag = true;
                    inner.flush_cv.notify_all();
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn apply_l0_backpressure(&self) {
        let inner = &*self.inner;
        let l0 = inner.core.l0_count();
        if l0 >= inner.opts.lsm.l0_stop_trigger {
            let t0 = Instant::now();
            while inner.core.l0_count() >= inner.opts.lsm.l0_stop_trigger
                && !inner.shutdown.load(Ordering::Acquire)
            {
                std::thread::sleep(Duration::from_micros(200));
            }
            Stats::add_time(&inner.stats.cumulative_stall_ns, t0.elapsed());
            inner
                .stats
                .cumulative_stall_count
                .fetch_add(1, Ordering::Relaxed);
        } else if l0 >= inner.opts.lsm.l0_slowdown_trigger {
            std::thread::sleep(SLOWDOWN_SLEEP);
            Stats::add_time(&inner.stats.cumulative_stall_ns, SLOWDOWN_SLEEP);
            inner
                .stats
                .cumulative_stall_count
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn charge_device_write(stats: &Stats, device: &DeviceModel, bytes: usize) {
    use miodb_pmem::DeviceClass;
    match device.class {
        DeviceClass::Nvm => stats
            .nvm_bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed),
        DeviceClass::Ssd => stats
            .ssd_bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed),
        DeviceClass::Dram => 0,
    };
    device.delay_write(bytes);
}

fn flush_worker(inner: Arc<DbInner>) {
    loop {
        {
            let mut flag = inner.flush_signal.lock();
            while !*flag && !inner.shutdown.load(Ordering::Acquire) {
                inner
                    .flush_cv
                    .wait_for(&mut flag, Duration::from_millis(100));
            }
            *flag = false;
        }
        let imm = inner.mem.read().imm.clone();
        if let Some(imm) = imm {
            let t0 = Instant::now();
            let result = inner.core.ingest_sorted_run(imm.list().iter());
            match result {
                Ok(_) => {
                    Stats::add_time(&inner.stats.flush_ns, t0.elapsed());
                    inner.stats.flush_count.fetch_add(1, Ordering::Relaxed);
                    inner
                        .stats
                        .flush_bytes
                        .fetch_add(imm.used_bytes(), Ordering::Relaxed);
                }
                Err(e) => {
                    *inner.background_error.lock() = Some(format!("flush failed: {e}"));
                }
            }
            {
                let mut mem = inner.mem.write();
                mem.imm = None;
            }
            {
                // Notify under the writer mutex to avoid lost wakeups (see
                // miodb-core's flush worker).
                let _writers = inner.mem_mutex.lock();
                inner.imm_cv.notify_all();
            }
            release_when_unique(imm);
        }
        if inner.shutdown.load(Ordering::Acquire) && inner.mem.read().imm.is_none() {
            return;
        }
    }
}

fn compaction_worker(inner: Arc<DbInner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match inner.core.run_one_compaction() {
            Ok(true) => continue,
            Ok(false) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => {
                *inner.background_error.lock() = Some(format!("compaction failed: {e}"));
                return;
            }
        }
    }
}

/// Frees a MemTable arena once no reader holds a reference.
fn release_when_unique(mut arc: Arc<SkipListArena>) {
    for _ in 0..10_000 {
        match Arc::try_unwrap(arc) {
            Ok(arena) => {
                arena.release();
                return;
            }
            Err(back) => {
                arc = back;
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
    // Readers still hold it after ~0.5 s: leak the arena rather than risk
    // a use-after-free; the pool reclaims it at process exit.
}

impl KvEngine for LsmDb {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, OpKind::Put)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", OpKind::Delete)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let inner = &*self.inner;
        inner.stats.gets.fetch_add(1, Ordering::Relaxed);
        let (active, imm) = {
            let mem = inner.mem.read();
            (mem.active.clone(), mem.imm.clone())
        };
        let found = active
            .list()
            .get(key)
            .or_else(|| imm.and_then(|m| m.list().get(key)))
            .map(|r| (r.value, r.kind));
        let found = match found {
            Some(v) => Some(v),
            None => inner.core.get(key)?.map(|e| (e.value, e.kind)),
        };
        match found {
            Some((_, OpKind::Delete)) => Ok(None),
            Some((v, OpKind::Put)) => {
                inner.stats.get_hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let inner = &*self.inner;
        let (active, imm) = {
            let mem = inner.mem.read();
            (mem.active.clone(), mem.imm.clone())
        };
        let mut sources: Vec<Box<dyn Iterator<Item = miodb_skiplist::iter::OwnedEntry> + Send>> =
            Vec::new();
        sources.push(Box::new(active.list().iter_from(start)));
        if let Some(imm) = imm {
            sources.push(Box::new(imm.list().iter_from(start)));
        }
        sources.extend(inner.core.scan_sources(start));
        let merged = dedup_newest(KWayMerge::new(sources), true);
        Ok(merged
            .take(limit)
            .map(|e| ScanEntry {
                key: e.key,
                value: e.value,
            })
            .collect())
    }

    fn wait_idle(&self) -> Result<()> {
        let inner = &*self.inner;
        loop {
            if let Some(msg) = inner.background_error.lock().clone() {
                return Err(Error::Background(msg));
            }
            let imm_pending = inner.mem.read().imm.is_some();
            if !imm_pending && inner.core.needs_compaction().is_none() {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn report(&self) -> EngineReport {
        let inner = &*self.inner;
        EngineReport {
            name: inner.opts.name.clone(),
            nvm_used_bytes: inner.core.store().total_bytes(),
            nvm_peak_bytes: inner.core.store().total_bytes(),
            tables_per_level: inner.core.tables_per_level(),
            stats: inner.stats.snapshot(),
        }
    }

    fn name(&self) -> &str {
        &self.inner.opts.name
    }
}

impl Drop for LsmDb {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.flush_cv.notify_all();
        self.inner.imm_cv.notify_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> LsmDb {
        let opts = LsmDbOptions {
            memtable_bytes: 64 * 1024,
            lsm: LsmOptions {
                table_bytes: 32 * 1024,
                level1_max_bytes: 128 * 1024,
                ..LsmOptions::default()
            },
            table_device: DeviceModel::nvm_unthrottled(),
            wal_device: DeviceModel::nvm_unthrottled(),
            name: "test-lsm".to_string(),
        };
        LsmDb::open(opts, Arc::new(Stats::new())).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let d = db();
        d.put(b"k1", b"v1").unwrap();
        assert_eq!(d.get(b"k1").unwrap().unwrap(), b"v1");
        d.delete(b"k1").unwrap();
        assert!(d.get(b"k1").unwrap().is_none());
        assert!(d.get(b"absent").unwrap().is_none());
    }

    #[test]
    fn overwrite_returns_newest() {
        let d = db();
        d.put(b"k", b"v1").unwrap();
        d.put(b"k", b"v2").unwrap();
        assert_eq!(d.get(b"k").unwrap().unwrap(), b"v2");
    }

    #[test]
    fn data_survives_flush_and_compaction() {
        let d = db();
        let value = vec![7u8; 512];
        for i in 0..2000u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        let report = d.report();
        assert!(report.stats.flush_count > 0, "expected flushes");
        for i in (0..2000u32).step_by(173) {
            assert_eq!(
                d.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
                value,
                "key{i}"
            );
        }
    }

    #[test]
    fn serialization_costs_are_recorded() {
        let d = db();
        let value = vec![1u8; 1024];
        for i in 0..500u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        let snap = d.report().stats;
        assert!(snap.serialization_ns > 0, "flushes must serialize");
        assert!(snap.nvm_bytes_written > snap.user_bytes_written, "WA > 1");
        for i in 0..100u32 {
            d.get(format!("key{i:06}").as_bytes()).unwrap();
        }
        assert!(
            d.report().stats.deserialization_ns > 0,
            "reads must deserialize"
        );
    }

    #[test]
    fn scan_spans_memtable_and_tables() {
        let d = db();
        let value = vec![9u8; 400];
        for i in 0..800u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        // A few fresh keys stay in the MemTable.
        d.put(b"key000000x", b"fresh").unwrap();
        let entries = d.scan(b"key000000", 5).unwrap();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0].key, b"key000000");
        assert_eq!(entries[1].key, b"key000000x");
        assert_eq!(entries[1].value, b"fresh");
    }

    #[test]
    fn deleted_keys_vanish_from_scans() {
        let d = db();
        d.put(b"a", b"1").unwrap();
        d.put(b"b", b"2").unwrap();
        d.put(b"c", b"3").unwrap();
        d.delete(b"b").unwrap();
        let entries = d.scan(b"a", 10).unwrap();
        let keys: Vec<Vec<u8>> = entries.into_iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn stall_accounting_under_write_burst() {
        // Tiny MemTable + slow flush device → interval stalls must appear.
        let opts = LsmDbOptions {
            memtable_bytes: 16 * 1024,
            lsm: LsmOptions {
                table_bytes: 16 * 1024,
                level1_max_bytes: 32 * 1024,
                l0_compaction_trigger: 2,
                l0_slowdown_trigger: 3,
                l0_stop_trigger: 5,
                ..LsmOptions::default()
            },
            // Heavily throttled device so flushing cannot keep up.
            table_device: DeviceModel::ssd().scaled(4.0),
            wal_device: DeviceModel::nvm_unthrottled(),
            name: "stall-test".to_string(),
        };
        let d = LsmDb::open(opts, Arc::new(Stats::new())).unwrap();
        let value = vec![3u8; 1024];
        for i in 0..600u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        let snap = d.report().stats;
        assert!(
            snap.interval_stall_ns + snap.cumulative_stall_ns > 0,
            "burst writes against a slow device must stall: {snap:?}"
        );
    }

    #[test]
    fn closed_db_rejects_writes() {
        let d = db();
        d.inner.shutdown.store(true, Ordering::Release);
        assert!(matches!(d.put(b"k", b"v"), Err(Error::Closed)));
    }
}
