//! Block-based SSTable format.
//!
//! Building a table **serializes** multi-version entries into 4 KiB data
//! blocks; reading one **deserializes** a block back into entries. These
//! two code paths are, per the paper's Figure 2 and Table 1, the dominant
//! costs of traditional LSM stores on NVM — MioDB's PMTables avoid them,
//! the baselines built on this crate pay them. Both paths are timed into
//! [`Stats::serialization_ns`](miodb_common::Stats) /
//! [`Stats::deserialization_ns`](miodb_common::Stats).
//!
//! Layout:
//!
//! ```text
//! [data block]*          entries: klen u32 | vlen u32 | seq u64 | kind u8 | key | value
//! [index block]          count u32, then per data block:
//!                          last_klen u32 | last_key | offset u64 | len u64
//! [bloom block]          num_hashes u32 | nbits u64 | words
//! [footer]               index_off u64 | index_len u64 | bloom_off u64 |
//!                        bloom_len u64 | num_entries u64 | crc32 u32 | magic u32
//! ```
//!
//! Entries within and across blocks are in multi-version order (key
//! ascending, seq descending), so the first hit for a key is its newest
//! version in this table.

use std::sync::Arc;
use std::time::Instant;

use miodb_bloom::BloomFilter;
use miodb_common::crc32::crc32;
use miodb_common::{Error, OpKind, Result, SequenceNumber, Stats};
use miodb_skiplist::iter::OwnedEntry;

use crate::storage::{TableId, TableStore};

const MAGIC: u32 = 0x4D53_5354; // "MSST"
const FOOTER_BYTES: usize = 8 * 5 + 4 + 4;

/// Modeled codec throughput: LevelDB-class encode/decode paths (varint
/// parsing, restart arrays, checksums, memcpy chains) move roughly 2 GB/s
/// per core. Our simplified format is much cheaper, so the difference is
/// charged as a CPU spin to keep serialization/deserialization costs
/// faithful to the systems the paper measures.
fn codec_delay(bytes: usize) {
    miodb_pmem::device::busy_delay_ns((bytes / 2) as u64);
}

/// Serializes entries (already in multi-version order) into the SSTable
/// format.
///
/// # Examples
///
/// ```
/// use miodb_lsm::{SsTableBuilder, TableStore};
/// use miodb_pmem::DeviceModel;
/// use miodb_common::{OpKind, Stats};
/// use std::sync::Arc;
///
/// # fn main() -> miodb_common::Result<()> {
/// let stats = Arc::new(Stats::new());
/// let store = TableStore::new(DeviceModel::ssd_unthrottled(), stats.clone());
/// let mut b = SsTableBuilder::new(4096, 10);
/// b.add(b"key", b"value", 1, OpKind::Put);
/// let meta = b.finish(&store, &stats)?;
/// assert_eq!(meta.num_entries, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SsTableBuilder {
    block_bytes: usize,
    bloom_bits_per_key: usize,
    data: Vec<u8>,
    index: Vec<(Vec<u8>, u64, u64)>,
    block_start: usize,
    keys: Vec<Vec<u8>>,
    smallest: Option<Vec<u8>>,
    largest: Option<Vec<u8>>,
    num_entries: u64,
    last: Option<(Vec<u8>, SequenceNumber)>,
}

/// Metadata of a finished table, including its cached reader (the "table
/// cache" — the paper's setup does not bound it, and neither do we).
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Store identifier.
    pub id: TableId,
    /// Smallest user key in the table.
    pub smallest: Vec<u8>,
    /// Largest user key in the table.
    pub largest: Vec<u8>,
    /// Total serialized size.
    pub bytes: u64,
    /// Number of entries (versions).
    pub num_entries: u64,
    /// Cached open reader.
    pub reader: Arc<SsTableReader>,
}

impl SsTableBuilder {
    /// Creates a builder with the given block size and bloom density.
    pub fn new(block_bytes: usize, bloom_bits_per_key: usize) -> SsTableBuilder {
        SsTableBuilder {
            block_bytes: block_bytes.max(256),
            bloom_bits_per_key,
            data: Vec::new(),
            index: Vec::new(),
            block_start: 0,
            keys: Vec::new(),
            smallest: None,
            largest: None,
            num_entries: 0,
            last: None,
        }
    }

    /// Serialized bytes so far (used to split large compaction outputs).
    pub fn estimated_bytes(&self) -> usize {
        self.data.len()
    }

    /// Number of entries added.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Appends one entry. Entries must arrive in strict multi-version
    /// order.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if entries arrive out of order.
    pub fn add(&mut self, key: &[u8], value: &[u8], seq: SequenceNumber, kind: OpKind) {
        if let Some((lk, ls)) = &self.last {
            debug_assert!(
                miodb_common::types::mv_cmp(lk, *ls, key, seq) == std::cmp::Ordering::Less,
                "entries must be added in multi-version order"
            );
        }
        self.last = Some((key.to_vec(), seq));
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest = Some(key.to_vec());
        self.keys.push(key.to_vec());

        self.data
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.data
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.data.extend_from_slice(&seq.to_le_bytes());
        self.data.push(kind as u8);
        self.data.extend_from_slice(key);
        self.data.extend_from_slice(value);
        self.num_entries += 1;

        if self.data.len() - self.block_start >= self.block_bytes {
            self.seal_block(key);
        }
    }

    fn seal_block(&mut self, last_key: &[u8]) {
        self.index.push((
            last_key.to_vec(),
            self.block_start as u64,
            (self.data.len() - self.block_start) as u64,
        ));
        self.block_start = self.data.len();
    }

    /// Finalizes the table into `store`, timing the whole serialization
    /// into `stats.serialization_ns`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] for an empty builder.
    pub fn finish(mut self, store: &Arc<TableStore>, stats: &Stats) -> Result<TableMeta> {
        if self.num_entries == 0 {
            return Err(Error::InvalidArgument("empty sstable".to_string()));
        }
        let t0 = Instant::now();
        codec_delay(self.data.len());
        if self.data.len() > self.block_start {
            let last = self.largest.clone().unwrap_or_default();
            self.seal_block(&last);
        }

        let mut bloom = BloomFilter::with_bits_per_key(self.keys.len(), self.bloom_bits_per_key);
        for k in &self.keys {
            bloom.insert(k);
        }

        let mut out = self.data;
        let index_off = out.len() as u64;
        out.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for (last_key, off, len) in &self.index {
            out.extend_from_slice(&(last_key.len() as u32).to_le_bytes());
            out.extend_from_slice(last_key);
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        let index_len = out.len() as u64 - index_off;

        let bloom_off = out.len() as u64;
        out.extend_from_slice(&bloom.num_hashes().to_le_bytes());
        out.extend_from_slice(&(bloom.num_bits() as u64).to_le_bytes());
        let bloom_bytes = bloom_to_bytes(&bloom);
        out.extend_from_slice(&bloom_bytes);
        let bloom_len = out.len() as u64 - bloom_off;

        let body_crc = crc32(&out);
        out.extend_from_slice(&index_off.to_le_bytes());
        out.extend_from_slice(&index_len.to_le_bytes());
        out.extend_from_slice(&bloom_off.to_le_bytes());
        out.extend_from_slice(&bloom_len.to_le_bytes());
        out.extend_from_slice(&self.num_entries.to_le_bytes());
        out.extend_from_slice(&body_crc.to_le_bytes());
        out.extend_from_slice(&MAGIC.to_le_bytes());

        Stats::add_time(&stats.serialization_ns, t0.elapsed());
        let bytes = out.len() as u64;
        let id = store.put_table(out);
        let reader = SsTableReader::open(store, id)?;
        Ok(TableMeta {
            id,
            smallest: self.smallest.unwrap(),
            largest: self.largest.unwrap(),
            bytes,
            num_entries: self.num_entries,
            reader: Arc::new(reader),
        })
    }
}

fn bloom_to_bytes(b: &BloomFilter) -> Vec<u8> {
    // Re-probe is cheaper than exposing internals: serialize via bit probing
    // would be wasteful, so BloomFilter exposes words through its Debug-safe
    // clone; we reconstruct from the filter's public state instead.
    // The filter is stored as little-endian u64 words.
    b.words().iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// A decoded index entry: the block holding keys `<= last_key`.
#[derive(Debug, Clone)]
struct IndexEntry {
    last_key: Vec<u8>,
    offset: u64,
    len: u64,
}

/// An open SSTable: index and bloom cached in DRAM, data blocks read (and
/// deserialized) on demand.
#[derive(Debug)]
pub struct SsTableReader {
    store: Arc<TableStore>,
    #[allow(dead_code)] // retained for debugging/Debug output
    id: TableId,
    /// Pinned contents: survive store deletion while readers hold the
    /// table (compaction may retire it under a concurrent lookup).
    blob: Arc<Vec<u8>>,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    num_entries: u64,
}

impl SsTableReader {
    /// Opens table `id`, reading and validating its footer, index and
    /// bloom filter.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] for malformed tables.
    pub fn open(store: &Arc<TableStore>, id: TableId) -> Result<SsTableReader> {
        let blob = store.blob(id)?;
        let total = blob.len();
        if total < FOOTER_BYTES {
            return Err(Error::Corruption("sstable smaller than footer".to_string()));
        }
        let footer = store.read_blob(&blob, total - FOOTER_BYTES, FOOTER_BYTES)?;
        let magic = u32::from_le_bytes(footer[44..48].try_into().unwrap());
        if magic != MAGIC {
            return Err(Error::Corruption("bad sstable magic".to_string()));
        }
        let index_off = u64::from_le_bytes(footer[0..8].try_into().unwrap()) as usize;
        let index_len = u64::from_le_bytes(footer[8..16].try_into().unwrap()) as usize;
        let bloom_off = u64::from_le_bytes(footer[16..24].try_into().unwrap()) as usize;
        let bloom_len = u64::from_le_bytes(footer[24..32].try_into().unwrap()) as usize;
        let num_entries = u64::from_le_bytes(footer[32..40].try_into().unwrap());

        let index_raw = store.read_blob(&blob, index_off, index_len)?;
        let mut index = Vec::new();
        let mut pos = 0usize;
        let count = read_u32(&index_raw, &mut pos)? as usize;
        for _ in 0..count {
            let klen = read_u32(&index_raw, &mut pos)? as usize;
            if pos + klen + 16 > index_raw.len() {
                return Err(Error::Corruption("truncated sstable index".to_string()));
            }
            let last_key = index_raw[pos..pos + klen].to_vec();
            pos += klen;
            let offset = u64::from_le_bytes(index_raw[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let len = u64::from_le_bytes(index_raw[pos..pos + 8].try_into().unwrap());
            pos += 8;
            index.push(IndexEntry {
                last_key,
                offset,
                len,
            });
        }

        let bloom_raw = store.read_blob(&blob, bloom_off, bloom_len)?;
        if bloom_raw.len() < 12 {
            return Err(Error::Corruption("truncated bloom block".to_string()));
        }
        let num_hashes = u32::from_le_bytes(bloom_raw[0..4].try_into().unwrap());
        let nbits = u64::from_le_bytes(bloom_raw[4..12].try_into().unwrap()) as usize;
        let words: Vec<u64> = bloom_raw[12..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let bloom = BloomFilter::from_words(nbits, num_hashes, words)
            .map_err(|_| Error::Corruption("bloom geometry mismatch".to_string()))?;

        Ok(SsTableReader {
            store: store.clone(),
            id,
            blob,
            index,
            bloom,
            num_entries,
        })
    }

    /// Number of entries in the table.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Bloom pre-check; `false` means the key is definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(key)
    }

    /// Returns the newest version of `key` in this table (tombstones
    /// included), timing block decode into `stats.deserialization_ns`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if a data block is malformed.
    pub fn get(&self, key: &[u8], stats: &Stats) -> Result<Option<OwnedEntry>> {
        if !self.may_contain(key) {
            return Ok(None);
        }
        let block_idx = self.index.partition_point(|e| e.last_key.as_slice() < key);
        if block_idx >= self.index.len() {
            return Ok(None);
        }
        let e = &self.index[block_idx];
        let raw = self
            .store
            .read_blob(&self.blob, e.offset as usize, e.len as usize)?;
        let t0 = Instant::now();
        codec_delay(raw.len());
        let result = scan_block_for(&raw, key);
        Stats::add_time(&stats.deserialization_ns, t0.elapsed());
        result
    }

    /// Iterates every entry of the table in multi-version order.
    pub fn iter(self: &Arc<Self>, stats: Arc<Stats>) -> SsTableIter {
        SsTableIter {
            reader: self.clone(),
            stats,
            block: Vec::new(),
            block_pos: 0,
            next_block: 0,
        }
    }

    /// Iterates entries starting from the first key `>= start`.
    pub fn iter_from(self: &Arc<Self>, start: &[u8], stats: Arc<Stats>) -> SsTableIter {
        let block_idx = self
            .index
            .partition_point(|e| e.last_key.as_slice() < start);
        let mut it = SsTableIter {
            reader: self.clone(),
            stats,
            block: Vec::new(),
            block_pos: 0,
            next_block: block_idx,
        };
        // Advance within the block to the first entry >= start.
        while let Some(peek) = it.peek_key() {
            if peek.as_slice() >= start {
                break;
            }
            it.next();
        }
        it
    }
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    if *pos + 4 > buf.len() {
        return Err(Error::Corruption("truncated u32".to_string()));
    }
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
    *pos += 4;
    Ok(v)
}

/// Decodes entries of a data block until `key`'s newest version is found.
fn scan_block_for(raw: &[u8], key: &[u8]) -> Result<Option<OwnedEntry>> {
    let mut pos = 0usize;
    while pos < raw.len() {
        let (entry_key, entry, next) = decode_entry(raw, pos)?;
        match entry_key.as_slice().cmp(key) {
            std::cmp::Ordering::Less => pos = next,
            std::cmp::Ordering::Equal => return Ok(Some(entry)),
            std::cmp::Ordering::Greater => return Ok(None),
        }
    }
    Ok(None)
}

fn decode_entry(raw: &[u8], pos: usize) -> Result<(Vec<u8>, OwnedEntry, usize)> {
    if pos + 17 > raw.len() {
        return Err(Error::Corruption("truncated block entry".to_string()));
    }
    let klen = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap()) as usize;
    let seq = u64::from_le_bytes(raw[pos + 8..pos + 16].try_into().unwrap());
    let kind = OpKind::from_u8(raw[pos + 16])
        .ok_or_else(|| Error::Corruption("bad entry kind".to_string()))?;
    let kstart = pos + 17;
    let vstart = kstart + klen;
    let next = vstart + vlen;
    if next > raw.len() {
        return Err(Error::Corruption("entry exceeds block".to_string()));
    }
    let key = raw[kstart..vstart].to_vec();
    let entry = OwnedEntry {
        key: key.clone(),
        value: raw[vstart..next].to_vec(),
        seq,
        kind,
    };
    Ok((key, entry, next))
}

/// Iterator over a table's entries, decoding one data block at a time.
#[derive(Debug)]
pub struct SsTableIter {
    reader: Arc<SsTableReader>,
    stats: Arc<Stats>,
    block: Vec<u8>,
    block_pos: usize,
    next_block: usize,
}

impl SsTableIter {
    fn ensure_block(&mut self) -> bool {
        while self.block_pos >= self.block.len() {
            if self.next_block >= self.reader.index.len() {
                return false;
            }
            let e = &self.reader.index[self.next_block];
            self.next_block += 1;
            self.block_pos = 0;
            match self
                .reader
                .store
                .read_blob(&self.reader.blob, e.offset as usize, e.len as usize)
            {
                Ok(b) => {
                    let t0 = Instant::now();
                    codec_delay(b.len());
                    Stats::add_time(&self.stats.deserialization_ns, t0.elapsed());
                    self.block = b;
                }
                Err(_) => return false,
            }
        }
        true
    }

    fn peek_key(&mut self) -> Option<Vec<u8>> {
        if !self.ensure_block() {
            return None;
        }
        decode_entry(&self.block, self.block_pos)
            .ok()
            .map(|(k, _, _)| k)
    }
}

impl Iterator for SsTableIter {
    type Item = OwnedEntry;

    fn next(&mut self) -> Option<OwnedEntry> {
        if !self.ensure_block() {
            return None;
        }
        let t0 = Instant::now();
        let (_, entry, next) = decode_entry(&self.block, self.block_pos).ok()?;
        self.block_pos = next;
        Stats::add_time(&self.stats.deserialization_ns, t0.elapsed());
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_pmem::DeviceModel;

    fn setup() -> (Arc<TableStore>, Arc<Stats>) {
        let stats = Arc::new(Stats::new());
        (
            TableStore::new(DeviceModel::ssd_unthrottled(), stats.clone()),
            stats,
        )
    }

    fn build(store: &Arc<TableStore>, stats: &Stats, n: u32) -> TableMeta {
        let mut b = SsTableBuilder::new(4096, 10);
        for i in 0..n {
            b.add(
                format!("key{i:06}").as_bytes(),
                format!("value-{i}").as_bytes(),
                i as u64 + 1,
                OpKind::Put,
            );
        }
        b.finish(store, stats).unwrap()
    }

    #[test]
    fn build_and_get() {
        let (store, stats) = setup();
        let meta = build(&store, &stats, 1000);
        assert_eq!(meta.num_entries, 1000);
        assert_eq!(meta.smallest, b"key000000");
        assert_eq!(meta.largest, b"key000999");
        for i in (0..1000u32).step_by(97) {
            let e = meta
                .reader
                .get(format!("key{i:06}").as_bytes(), &stats)
                .unwrap()
                .unwrap();
            assert_eq!(e.value, format!("value-{i}").as_bytes());
            assert_eq!(e.seq, i as u64 + 1);
        }
        assert!(meta.reader.get(b"missing", &stats).unwrap().is_none());
        assert!(
            stats
                .serialization_ns
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
    }

    #[test]
    fn deserialization_is_timed() {
        let (store, stats) = setup();
        let meta = build(&store, &stats, 500);
        // Probe keys that pass the bloom filter.
        for i in 0..500u32 {
            meta.reader
                .get(format!("key{i:06}").as_bytes(), &stats)
                .unwrap();
        }
        assert!(
            stats
                .deserialization_ns
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
    }

    #[test]
    fn bloom_skips_absent_keys() {
        let (store, stats) = setup();
        let meta = build(&store, &stats, 1000);
        let mut passes = 0;
        for i in 0..1000 {
            if meta.reader.may_contain(format!("absent{i}").as_bytes()) {
                passes += 1;
            }
        }
        assert!(passes < 30, "bloom fp rate too high: {passes}/1000");
    }

    #[test]
    fn iterates_in_order() {
        let (store, stats) = setup();
        let meta = build(&store, &stats, 777);
        let entries: Vec<OwnedEntry> = meta.reader.iter(stats.clone()).collect();
        assert_eq!(entries.len(), 777);
        for w in entries.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn iter_from_seeks() {
        let (store, stats) = setup();
        let meta = build(&store, &stats, 100);
        let first = meta
            .reader
            .iter_from(b"key000050", stats.clone())
            .next()
            .unwrap();
        assert_eq!(first.key, b"key000050");
        let first = meta
            .reader
            .iter_from(b"key0000505", stats.clone())
            .next()
            .unwrap();
        assert_eq!(first.key, b"key000051");
        assert!(meta
            .reader
            .iter_from(b"zzz", stats.clone())
            .next()
            .is_none());
    }

    #[test]
    fn multi_version_entries_newest_first() {
        let (store, stats) = setup();
        let mut b = SsTableBuilder::new(4096, 10);
        b.add(b"dup", b"v3", 9, OpKind::Put);
        b.add(b"dup", b"v2", 5, OpKind::Put);
        b.add(b"dup", b"", 2, OpKind::Delete);
        let meta = b.finish(&store, &stats).unwrap();
        let e = meta.reader.get(b"dup", &stats).unwrap().unwrap();
        assert_eq!(e.value, b"v3");
        assert_eq!(e.seq, 9);
        let versions: Vec<u64> = meta.reader.iter(stats.clone()).map(|e| e.seq).collect();
        assert_eq!(versions, vec![9, 5, 2]);
    }

    #[test]
    fn empty_builder_rejected() {
        let (store, stats) = setup();
        let b = SsTableBuilder::new(4096, 10);
        assert!(b.finish(&store, &stats).is_err());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let (store, _stats) = setup();
        let id = store.put_table(vec![0u8; 256]);
        assert!(SsTableReader::open(&store, id).is_err());
    }

    #[test]
    fn large_values_span_blocks() {
        let (store, stats) = setup();
        let mut b = SsTableBuilder::new(4096, 10);
        let big = vec![0x5Au8; 20_000];
        for i in 0..20u32 {
            b.add(
                format!("k{i:02}").as_bytes(),
                &big,
                i as u64 + 1,
                OpKind::Put,
            );
        }
        let meta = b.finish(&store, &stats).unwrap();
        for i in 0..20u32 {
            let e = meta
                .reader
                .get(format!("k{i:02}").as_bytes(), &stats)
                .unwrap()
                .unwrap();
            assert_eq!(e.value.len(), 20_000);
        }
    }
}
