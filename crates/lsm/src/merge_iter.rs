//! K-way multi-version merging across sorted entry sources.
//!
//! Compactions and scans combine several sorted runs (MemTables, PMTables,
//! SSTables). [`KWayMerge`] yields the union in global multi-version order
//! (key ascending, seq descending); [`dedup_newest`] collapses it to the
//! newest version per key, optionally dropping tombstones (bottom level).

use miodb_skiplist::iter::OwnedEntry;

/// Merges sorted entry iterators into one globally sorted stream.
///
/// Sources must each be in multi-version order. Ties on `(key, seq)` are
/// broken by source index (earlier sources win), which callers exploit by
/// passing newer sources first.
pub struct KWayMerge {
    sources: Vec<std::iter::Peekable<Box<dyn Iterator<Item = OwnedEntry> + Send>>>,
}

impl std::fmt::Debug for KWayMerge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KWayMerge")
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl KWayMerge {
    /// Builds a merge over `sources` (newest first for tie-breaking).
    pub fn new(sources: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>>) -> KWayMerge {
        KWayMerge {
            sources: sources.into_iter().map(Iterator::peekable).collect(),
        }
    }
}

impl Iterator for KWayMerge {
    type Item = OwnedEntry;

    fn next(&mut self) -> Option<OwnedEntry> {
        let mut best: Option<(usize, Vec<u8>, u64)> = None;
        for i in 0..self.sources.len() {
            let Some(e) = self.sources[i].peek() else {
                continue;
            };
            let replace = match &best {
                None => true,
                Some((_, bk, bs)) => {
                    miodb_common::types::mv_cmp(&e.key, e.seq, bk, *bs) == std::cmp::Ordering::Less
                }
            };
            if replace {
                best = Some((i, e.key.clone(), e.seq));
            }
        }
        best.and_then(|(i, _, _)| self.sources[i].next())
    }
}

/// Collapses a multi-version-ordered stream to the newest version per key.
///
/// When `drop_tombstones` is true (bottom-level compaction), keys whose
/// newest version is a delete are omitted entirely.
pub fn dedup_newest(
    iter: impl Iterator<Item = OwnedEntry>,
    drop_tombstones: bool,
) -> impl Iterator<Item = OwnedEntry> {
    let mut last_key: Option<Vec<u8>> = None;
    iter.filter_map(move |e| {
        if last_key.as_deref() == Some(e.key.as_slice()) {
            return None; // older version of a key we already emitted/skipped
        }
        last_key = Some(e.key.clone());
        if drop_tombstones && e.kind.is_delete() {
            None
        } else {
            Some(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use miodb_common::OpKind;

    fn e(key: &str, value: &str, seq: u64, kind: OpKind) -> OwnedEntry {
        OwnedEntry {
            key: key.as_bytes().to_vec(),
            value: value.as_bytes().to_vec(),
            seq,
            kind,
        }
    }

    fn boxed(v: Vec<OwnedEntry>) -> Box<dyn Iterator<Item = OwnedEntry> + Send> {
        Box::new(v.into_iter())
    }

    #[test]
    fn merges_disjoint_sources() {
        let m = KWayMerge::new(vec![
            boxed(vec![e("b", "2", 2, OpKind::Put)]),
            boxed(vec![
                e("a", "1", 1, OpKind::Put),
                e("c", "3", 3, OpKind::Put),
            ]),
        ]);
        let keys: Vec<Vec<u8>> = m.map(|x| x.key).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn multi_version_global_order() {
        let m = KWayMerge::new(vec![
            boxed(vec![e("k", "new", 9, OpKind::Put)]),
            boxed(vec![e("k", "old", 3, OpKind::Put)]),
        ]);
        let seqs: Vec<u64> = m.map(|x| x.seq).collect();
        assert_eq!(seqs, vec![9, 3]);
    }

    #[test]
    fn dedup_keeps_newest() {
        let src = vec![
            e("a", "new", 9, OpKind::Put),
            e("a", "old", 3, OpKind::Put),
            e("b", "only", 5, OpKind::Put),
        ];
        let out: Vec<OwnedEntry> = dedup_newest(src.into_iter(), false).collect();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, b"new");
        assert_eq!(out[1].value, b"only");
    }

    #[test]
    fn dedup_drops_tombstones_at_bottom() {
        let src = vec![
            e("a", "", 9, OpKind::Delete),
            e("a", "old", 3, OpKind::Put),
            e("b", "live", 5, OpKind::Put),
        ];
        let out: Vec<OwnedEntry> = dedup_newest(src.into_iter(), true).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].key, b"b");
    }

    #[test]
    fn dedup_keeps_tombstones_midway() {
        let src = vec![e("a", "", 9, OpKind::Delete), e("a", "old", 3, OpKind::Put)];
        let out: Vec<OwnedEntry> = dedup_newest(src.into_iter(), false).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, OpKind::Delete);
    }

    #[test]
    fn empty_sources() {
        let m = KWayMerge::new(vec![boxed(vec![]), boxed(vec![])]);
        assert_eq!(m.count(), 0);
        let m = KWayMerge::new(vec![]);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn three_way_interleave() {
        let m = KWayMerge::new(vec![
            boxed(vec![e("a", "", 1, OpKind::Put), e("d", "", 4, OpKind::Put)]),
            boxed(vec![e("b", "", 2, OpKind::Put), e("e", "", 5, OpKind::Put)]),
            boxed(vec![e("c", "", 3, OpKind::Put), e("f", "", 6, OpKind::Put)]),
        ]);
        let keys: Vec<u8> = m.map(|x| x.key[0]).collect();
        assert_eq!(keys, b"abcdef".to_vec());
    }
}
