//! Table storage over a modeled block device.
//!
//! SSTables are immutable byte blobs. The store keeps them in process
//! memory but charges every read and write to a [`DeviceModel`] (NVM-class
//! for the in-memory-mode baselines, SSD-class for tiered deployments),
//! which is what produces the serialization-dominated behaviour the paper
//! measures. Reads are charged at block granularity, mirroring page-sized
//! device access.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use miodb_common::{Error, Result, Stats};
use miodb_pmem::{DeviceClass, DeviceModel};
use parking_lot::RwLock;

/// Identifier of a stored table.
pub type TableId = u64;

/// An immutable blob store with device-modeled timing and accounting.
pub struct TableStore {
    device: DeviceModel,
    stats: Arc<Stats>,
    files: RwLock<HashMap<TableId, Arc<Vec<u8>>>>,
    next_id: AtomicU64,
    total_bytes: AtomicU64,
}

impl std::fmt::Debug for TableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableStore")
            .field("device", &self.device.class)
            .field("tables", &self.files.read().len())
            .field("total_bytes", &self.total_bytes())
            .finish()
    }
}

impl TableStore {
    /// Creates a store charged to `device`, with counters routed to
    /// `stats`.
    pub fn new(device: DeviceModel, stats: Arc<Stats>) -> Arc<TableStore> {
        Arc::new(TableStore {
            device,
            stats,
            files: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            total_bytes: AtomicU64::new(0),
        })
    }

    /// The device model in use.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The shared statistics block.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    fn charge_write(&self, bytes: usize) {
        match self.device.class {
            DeviceClass::Nvm => self
                .stats
                .nvm_bytes_written
                .fetch_add(bytes as u64, Ordering::Relaxed),
            DeviceClass::Ssd => self
                .stats
                .ssd_bytes_written
                .fetch_add(bytes as u64, Ordering::Relaxed),
            DeviceClass::Dram => 0,
        };
        self.device.delay_write(bytes);
    }

    fn charge_read(&self, bytes: usize) {
        match self.device.class {
            DeviceClass::Nvm => self
                .stats
                .nvm_bytes_read
                .fetch_add(bytes as u64, Ordering::Relaxed),
            DeviceClass::Ssd => self
                .stats
                .ssd_bytes_read
                .fetch_add(bytes as u64, Ordering::Relaxed),
            DeviceClass::Dram => 0,
        };
        self.device.delay_read(bytes);
    }

    /// Persists `data` as a new table, charging a full sequential write.
    pub fn put_table(&self, data: Vec<u8>) -> TableId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.charge_write(data.len());
        self.total_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.files.write().insert(id, Arc::new(data));
        id
    }

    /// Reads `len` bytes at `offset` from table `id`, charging the device
    /// at 4 KiB block granularity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the table is missing or the range
    /// is out of bounds.
    pub fn read(&self, id: TableId, offset: usize, len: usize) -> Result<Vec<u8>> {
        let file = self.blob(id)?;
        self.read_blob(&file, offset, len)
    }

    /// Pins table `id`'s contents; the blob outlives a concurrent
    /// [`delete`](TableStore::delete), so readers holding a superseded
    /// level snapshot keep working while compaction reclaims the table.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] if the table is missing.
    pub fn blob(&self, id: TableId) -> Result<Arc<Vec<u8>>> {
        self.files
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::Corruption(format!("missing table {id}")))
    }

    /// Reads from a pinned blob with the same device charging as
    /// [`read`](TableStore::read).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corruption`] for out-of-bounds ranges.
    pub fn read_blob(&self, file: &Arc<Vec<u8>>, offset: usize, len: usize) -> Result<Vec<u8>> {
        let end = offset
            .checked_add(len)
            .ok_or_else(|| Error::Corruption("table read overflow".to_string()))?;
        if end > file.len() {
            return Err(Error::Corruption(format!(
                "table read {offset}+{len} beyond {}",
                file.len()
            )));
        }
        // Block-granular charging: reading 1 byte still costs a 4 KiB page.
        let first_block = offset / 4096;
        let last_block = (end.max(1) - 1) / 4096;
        self.charge_read((last_block - first_block + 1) * 4096);
        Ok(file[offset..end].to_vec())
    }

    /// Size of table `id`, if present.
    pub fn table_len(&self, id: TableId) -> Option<usize> {
        self.files.read().get(&id).map(|f| f.len())
    }

    /// Deletes a table (space is reclaimed immediately).
    pub fn delete(&self, id: TableId) {
        if let Some(f) = self.files.write().remove(&id) {
            self.total_bytes
                .fetch_sub(f.len() as u64, Ordering::Relaxed);
        }
    }

    /// Total live bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Number of live tables.
    pub fn table_count(&self) -> usize {
        self.files.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<TableStore> {
        TableStore::new(DeviceModel::ssd_unthrottled(), Arc::new(Stats::new()))
    }

    #[test]
    fn put_read_round_trip() {
        let s = store();
        let id = s.put_table(vec![1, 2, 3, 4, 5]);
        assert_eq!(s.read(id, 1, 3).unwrap(), vec![2, 3, 4]);
        assert_eq!(s.table_len(id), Some(5));
    }

    #[test]
    fn missing_table_is_corruption() {
        let s = store();
        assert!(s.read(999, 0, 1).unwrap_err().is_corruption());
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let s = store();
        let id = s.put_table(vec![0u8; 100]);
        assert!(s.read(id, 90, 20).unwrap_err().is_corruption());
    }

    #[test]
    fn delete_reclaims_bytes() {
        let s = store();
        let id = s.put_table(vec![0u8; 1000]);
        assert_eq!(s.total_bytes(), 1000);
        s.delete(id);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.table_count(), 0);
    }

    #[test]
    fn writes_charged_to_ssd() {
        let stats = Arc::new(Stats::new());
        let s = TableStore::new(DeviceModel::ssd_unthrottled(), stats.clone());
        s.put_table(vec![0u8; 4096]);
        assert_eq!(stats.ssd_bytes_written.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn reads_charged_per_block() {
        let stats = Arc::new(Stats::new());
        let s = TableStore::new(DeviceModel::nvm_unthrottled(), stats.clone());
        let id = s.put_table(vec![0u8; 10_000]);
        s.read(id, 0, 10).unwrap();
        assert_eq!(stats.nvm_bytes_read.load(Ordering::Relaxed), 4096);
        s.read(id, 4000, 200).unwrap(); // spans two blocks
        assert_eq!(stats.nvm_bytes_read.load(Ordering::Relaxed), 4096 + 8192);
    }
}
