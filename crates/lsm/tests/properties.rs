//! Property tests for the LSM substrate: SSTable round-trips, k-way merge
//! against a sort-based model, and the leveled hierarchy against a map
//! model across arbitrary ingest/compaction schedules.

use std::collections::BTreeMap;
use std::sync::Arc;

use miodb_common::{OpKind, Stats};
use miodb_lsm::merge_iter::{dedup_newest, KWayMerge};
use miodb_lsm::{LsmCore, LsmOptions, SsTableBuilder, TableStore};
use miodb_pmem::DeviceModel;
use miodb_skiplist::iter::OwnedEntry;
use proptest::prelude::*;

fn store() -> (Arc<TableStore>, Arc<Stats>) {
    let stats = Arc::new(Stats::new());
    (
        TableStore::new(DeviceModel::ssd_unthrottled(), stats.clone()),
        stats,
    )
}

fn entry_strategy() -> impl Strategy<Value = (u16, Vec<u8>, bool)> {
    (
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..300),
        any::<bool>(),
    )
}

fn to_sorted_run(raw: &[(u16, Vec<u8>, bool)], seq_base: u64) -> Vec<OwnedEntry> {
    let mut entries: Vec<OwnedEntry> = raw
        .iter()
        .enumerate()
        .map(|(i, (k, v, del))| OwnedEntry {
            key: format!("key{:05}", k % 300).into_bytes(),
            value: if *del { Vec::new() } else { v.clone() },
            seq: seq_base + i as u64 + 1,
            kind: if *del { OpKind::Delete } else { OpKind::Put },
        })
        .collect();
    entries.sort_by(|a, b| miodb_common::types::mv_cmp(&a.key, a.seq, &b.key, b.seq));
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sstable_round_trip(raw in proptest::collection::vec(entry_strategy(), 1..120)) {
        let (store, stats) = store();
        let entries = to_sorted_run(&raw, 0);
        let mut b = SsTableBuilder::new(1024, 10);
        for e in &entries {
            b.add(&e.key, &e.value, e.seq, e.kind);
        }
        let meta = b.finish(&store, &stats).unwrap();
        // Iteration returns exactly the input.
        let out: Vec<OwnedEntry> = meta.reader.iter(stats.clone()).collect();
        prop_assert_eq!(&out, &entries);
        // Point lookups return the newest version per key.
        let mut newest: BTreeMap<Vec<u8>, &OwnedEntry> = BTreeMap::new();
        for e in &entries {
            newest.entry(e.key.clone()).or_insert(e);
        }
        for (k, want) in &newest {
            let got = meta.reader.get(k, &stats).unwrap().unwrap();
            prop_assert_eq!(got.seq, want.seq);
            prop_assert_eq!(&got.value, &want.value);
        }
    }

    #[test]
    fn kway_merge_equals_sorted_union(
        runs in proptest::collection::vec(
            proptest::collection::vec(entry_strategy(), 1..40), 1..5)
    ) {
        let mut sources: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> = Vec::new();
        let mut all: Vec<OwnedEntry> = Vec::new();
        for (i, raw) in runs.iter().enumerate() {
            let entries = to_sorted_run(raw, (i * 1000) as u64);
            all.extend(entries.clone());
            sources.push(Box::new(entries.into_iter()));
        }
        let merged: Vec<OwnedEntry> = KWayMerge::new(sources).collect();
        all.sort_by(|a, b| miodb_common::types::mv_cmp(&a.key, a.seq, &b.key, b.seq));
        prop_assert_eq!(merged, all);
    }

    #[test]
    fn lsm_core_matches_model_through_compactions(
        batches in proptest::collection::vec(
            proptest::collection::vec(entry_strategy(), 1..40), 1..8)
    ) {
        let stats = Arc::new(Stats::new());
        let store = TableStore::new(DeviceModel::ssd_unthrottled(), stats);
        let core = LsmCore::new(
            store,
            LsmOptions {
                table_bytes: 4 * 1024,
                level1_max_bytes: 8 * 1024,
                l0_compaction_trigger: 2,
                ..LsmOptions::default()
            },
        );
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut seq_base = 0u64;
        for raw in &batches {
            let entries = to_sorted_run(raw, seq_base);
            seq_base += 1000;
            // Model applies in seq order.
            let mut by_seq = entries.clone();
            by_seq.sort_by_key(|e| e.seq);
            for e in &by_seq {
                if e.kind.is_delete() {
                    model.insert(e.key.clone(), None);
                } else {
                    model.insert(e.key.clone(), Some(e.value.clone()));
                }
            }
            core.ingest_sorted_run(entries.into_iter()).unwrap();
            core.compact_to_quiescence().unwrap();
        }
        for (k, want) in &model {
            let got = core.get(k).unwrap();
            match want {
                Some(v) => {
                    let got = got.unwrap_or_else(|| panic!("lost key {k:?}"));
                    prop_assert_eq!(got.kind, OpKind::Put);
                    prop_assert_eq!(&got.value, v);
                }
                None => {
                    if let Some(got) = got {
                        prop_assert!(got.kind.is_delete(), "resurrected {k:?}");
                    }
                }
            }
        }
        // Scans see exactly the live set.
        let live: Vec<&Vec<u8>> =
            model.iter().filter_map(|(k, v)| v.as_ref().map(|_| k)).collect();
        let scanned: Vec<OwnedEntry> =
            dedup_newest(KWayMerge::new(core.scan_sources(b"")), true).collect();
        prop_assert_eq!(scanned.len(), live.len());
        for (s, k) in scanned.iter().zip(&live) {
            prop_assert_eq!(&&s.key, k);
        }
    }
}
