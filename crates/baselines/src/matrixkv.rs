//! MatrixKV baseline: an NVM matrix container replacing `L0`, drained by
//! fine-grained column compactions.
//!
//! Per the paper (§2.3, Figure 1d):
//!
//! - flushed MemTables are **serialized into rows** of a matrix container
//!   in NVM (we reuse the SSTable block format for rows — MatrixKV's
//!   RowTable is likewise a serialized sorted run with a DRAM index);
//! - when the container grows past its budget, a **column compaction**
//!   selects one key-range column across all rows, merges it directly into
//!   `L1`, and logically truncates each row — far less data per compaction
//!   than a monolithic `L0→L1` merge, which removes interval stalls but
//!   keeps cumulative ones (Table 1);
//! - reads binary-search each row through its DRAM-resident index
//!   (deserializing the touched blocks), newest row first.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb_common::{
    CompactionKind, EngineReport, EngineTelemetry, Error, KvEngine, OpKind, Result, ScanEntry,
    StallKind, Stats, TelemetryOptions,
};
use miodb_lsm::merge_iter::{dedup_newest, KWayMerge};
use miodb_lsm::sstable::{SsTableBuilder, TableMeta};
use miodb_lsm::{LsmCore, LsmOptions, TableStore};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_skiplist::iter::OwnedEntry;
use miodb_skiplist::SkipListArena;
use parking_lot::{Condvar, Mutex, RwLock};

/// MatrixKV configuration.
#[derive(Debug, Clone)]
pub struct MatrixKvOptions {
    /// DRAM MemTable capacity.
    pub memtable_bytes: usize,
    /// Matrix container byte budget (paper: 8 GB of NVM, scaled).
    pub container_bytes: u64,
    /// Fraction of the container drained per column compaction
    /// (denominator: 8 → one eighth per compaction).
    pub column_denominator: u64,
    /// LSM hierarchy for `L1+` (its `L0` stays empty).
    pub lsm: LsmOptions,
    /// Device for SSTables (`L1+`).
    pub table_device: DeviceModel,
    /// Device the matrix container rows live on (NVM-class).
    pub row_device: DeviceModel,
    /// Engine name.
    pub name: String,
    /// Telemetry collectors (same knob as MioDB's `Options::telemetry`).
    pub telemetry: TelemetryOptions,
}

impl Default for MatrixKvOptions {
    fn default() -> MatrixKvOptions {
        MatrixKvOptions {
            memtable_bytes: 2 << 20,
            container_bytes: 16 << 20,
            column_denominator: 8,
            lsm: LsmOptions::default(),
            table_device: DeviceModel::nvm(),
            row_device: DeviceModel::nvm(),
            name: "MatrixKV".to_string(),
            telemetry: TelemetryOptions::default(),
        }
    }
}

/// One matrix row: a serialized sorted run plus the logical lower bound
/// below which its cells were consumed by column compactions.
#[derive(Debug, Clone)]
struct Row {
    meta: Arc<TableMeta>,
    /// Keys `< lower_bound` in this row are dead (already compacted).
    lower_bound: Vec<u8>,
}

impl Row {
    fn live(&self, key: &[u8]) -> bool {
        key >= self.lower_bound.as_slice() && key <= self.meta.largest.as_slice()
    }

    fn exhausted(&self) -> bool {
        self.lower_bound.as_slice() > self.meta.largest.as_slice()
    }
}

struct MemState {
    active: Arc<SkipListArena>,
    imm: Option<Arc<SkipListArena>>,
}

struct Inner {
    opts: MatrixKvOptions,
    stats: Arc<Stats>,
    dram: Arc<PmemPool>,
    row_store: Arc<TableStore>,
    /// Rows, newest first.
    rows: RwLock<Vec<Row>>,
    lsm: LsmCore,
    mem: RwLock<MemState>,
    write_mutex: Mutex<()>,
    imm_cv: Condvar,
    flush_flag: Mutex<bool>,
    flush_cv: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
    bg_error: Mutex<Option<String>>,
    telemetry: EngineTelemetry,
}

/// The MatrixKV baseline engine.
pub struct MatrixKv {
    inner: Arc<Inner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for MatrixKv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixKv")
            .field("rows", &self.inner.rows.read().len())
            .finish()
    }
}

impl MatrixKv {
    /// Opens a fresh engine.
    ///
    /// # Errors
    ///
    /// Returns allocation errors from the DRAM pool.
    pub fn open(opts: MatrixKvOptions, stats: Arc<Stats>) -> Result<MatrixKv> {
        let dram = PmemPool::new(
            (opts.memtable_bytes * 6).max(8 << 20),
            DeviceModel::dram(),
            stats.clone(),
        )?;
        let row_store = TableStore::new(opts.row_device, stats.clone());
        let table_store = TableStore::new(opts.table_device, stats.clone());
        let lsm = LsmCore::new(table_store, opts.lsm.clone());
        let active = Arc::new(SkipListArena::new(dram.clone(), opts.memtable_bytes)?);
        // Level 0 is the matrix container; deeper levels mirror the LSM.
        let telemetry = EngineTelemetry::new(1 + lsm.tables_per_level().len(), &opts.telemetry);
        let inner = Arc::new(Inner {
            opts,
            stats,
            dram,
            row_store,
            rows: RwLock::new(Vec::new()),
            lsm,
            mem: RwLock::new(MemState { active, imm: None }),
            write_mutex: Mutex::new(()),
            imm_cv: Condvar::new(),
            flush_flag: Mutex::new(false),
            flush_cv: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            bg_error: Mutex::new(None),
            telemetry,
        });
        let mut threads = Vec::new();
        {
            let inner = inner.clone();
            threads.push(std::thread::spawn(move || flush_worker(inner)));
        }
        {
            let inner = inner.clone();
            threads.push(std::thread::spawn(move || column_worker(inner)));
        }
        {
            let inner = inner.clone();
            threads.push(std::thread::spawn(move || lsm_worker(inner)));
        }
        Ok(MatrixKv {
            inner,
            threads: Mutex::new(threads),
        })
    }

    fn container_bytes(&self) -> u64 {
        self.inner.row_store.total_bytes()
    }

    fn write(&self, key: &[u8], value: &[u8], kind: OpKind) -> Result<()> {
        let inner = &*self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::Closed);
        }
        if let Some(msg) = inner.bg_error.lock().clone() {
            return Err(Error::Background(msg));
        }
        let op_start = Instant::now();
        let mut guard = inner.write_mutex.lock();
        Stats::add(
            &inner.stats.user_bytes_written,
            (key.len() + value.len()) as u64,
        );

        // Container backpressure: pacing past the soft budget, as MatrixKV
        // does when column compactions fall behind (cumulative stalls).
        let used = self.container_bytes();
        if used > inner.opts.container_bytes {
            let pause = Duration::from_micros(800);
            inner.telemetry.stall_begin(StallKind::Cumulative);
            std::thread::sleep(pause);
            Stats::add_time(&inner.stats.cumulative_stall_ns, pause);
            Stats::add(&inner.stats.cumulative_stall_count, 1);
            inner.telemetry.stall_end(StallKind::Cumulative, pause);
        }

        // WAL to NVM (modeled append).
        inner
            .row_store
            .stats()
            .nvm_bytes_written
            .fetch_add((17 + key.len() + value.len()) as u64, Ordering::Relaxed);
        inner
            .opts
            .row_device
            .delay_write(17 + key.len() + value.len());

        let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        loop {
            // Scope the Arc clone to the attempt: holding it across the
            // rotation wait would stall the flush worker's unique-release.
            let r = {
                let active = inner.mem.read().active.clone();
                active.insert(key, value, seq, kind)
            };
            match r {
                Ok(()) => {
                    let h = match kind {
                        OpKind::Put => &inner.telemetry.put_latency,
                        OpKind::Delete => &inner.telemetry.delete_latency,
                    };
                    h.record(dur_ns(op_start.elapsed()));
                    return Ok(());
                }
                Err(Error::ArenaFull) => {
                    let t0 = Instant::now();
                    let mut stalled = false;
                    while inner.mem.read().imm.is_some() {
                        if !stalled {
                            stalled = true;
                            inner.telemetry.stall_begin(StallKind::Interval);
                        }
                        inner.imm_cv.wait_for(&mut guard, Duration::from_millis(5));
                        if inner.shutdown.load(Ordering::Acquire) {
                            return Err(Error::Closed);
                        }
                    }
                    if stalled {
                        let waited = t0.elapsed();
                        Stats::add_time(&inner.stats.interval_stall_ns, waited);
                        Stats::add(&inner.stats.interval_stall_count, 1);
                        inner.telemetry.stall_end(StallKind::Interval, waited);
                    }
                    let fresh = Arc::new(SkipListArena::new(
                        inner.dram.clone(),
                        inner
                            .opts
                            .memtable_bytes
                            .max(SkipListArena::capacity_for_entry(key.len(), value.len())),
                    )?);
                    {
                        let mut mem = inner.mem.write();
                        let old = std::mem::replace(&mut mem.active, fresh);
                        mem.imm = Some(old);
                    }
                    let mut flag = inner.flush_flag.lock();
                    *flag = true;
                    inner.flush_cv.notify_all();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Serializes the immutable MemTable into a new container row.
fn flush_worker(inner: Arc<Inner>) {
    loop {
        {
            let mut flag = inner.flush_flag.lock();
            while !*flag && !inner.shutdown.load(Ordering::Acquire) {
                inner
                    .flush_cv
                    .wait_for(&mut flag, Duration::from_millis(10));
            }
            *flag = false;
        }
        let imm = inner.mem.read().imm.clone();
        if let Some(imm) = imm {
            inner.telemetry.flush_begin(imm.used_bytes());
            let t0 = Instant::now();
            let result: Result<()> = (|| {
                let mut builder = SsTableBuilder::new(
                    inner.opts.lsm.block_bytes,
                    inner.opts.lsm.bloom_bits_per_key,
                );
                for e in imm.list().iter() {
                    builder.add(&e.key, &e.value, e.seq, e.kind);
                }
                if builder.num_entries() > 0 {
                    let meta = builder.finish(&inner.row_store, &inner.stats)?;
                    inner.rows.write().insert(
                        0,
                        Row {
                            meta: Arc::new(meta),
                            lower_bound: Vec::new(),
                        },
                    );
                }
                Ok(())
            })();
            if let Err(e) = result {
                *inner.bg_error.lock() = Some(format!("row flush failed: {e}"));
            }
            let took = t0.elapsed();
            Stats::add_time(&inner.stats.flush_ns, took);
            Stats::add(&inner.stats.flush_count, 1);
            Stats::add(&inner.stats.flush_bytes, imm.used_bytes());
            inner.telemetry.flush_end(imm.used_bytes(), took);
            {
                let mut mem = inner.mem.write();
                mem.imm = None;
            }
            {
                // Notify under the writer mutex to avoid lost wakeups.
                let _writers = inner.write_mutex.lock();
                inner.imm_cv.notify_all();
            }
            release_arena_when_unique(imm);
        }
        if inner.shutdown.load(Ordering::Acquire) && inner.mem.read().imm.is_none() {
            return;
        }
    }
}

/// Column compaction: drain the lowest key-range column of the container
/// into `L1` directly.
fn column_worker(inner: Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        if inner.row_store.total_bytes() < inner.opts.container_bytes / 2 {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        if let Err(e) = run_column_compaction(&inner) {
            *inner.bg_error.lock() = Some(format!("column compaction failed: {e}"));
            return;
        }
    }
}

fn run_column_compaction(inner: &Inner) -> Result<()> {
    let rows: Vec<Row> = inner.rows.read().clone();
    if rows.is_empty() {
        std::thread::sleep(Duration::from_millis(2));
        return Ok(());
    }
    // The container is level 0; a column compaction moves data into L1.
    inner
        .telemetry
        .compaction_begin(0, CompactionKind::LazyCopy);
    let t0 = Instant::now();
    let target_bytes =
        (inner.opts.container_bytes / inner.opts.column_denominator).max(64 * 1024) as usize;

    // Collect the global lowest column: merge all live row entries and cut
    // at the target size. Rows are newest-first so ties resolve correctly.
    let mut sources: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> = Vec::new();
    for row in &rows {
        let lb = row.lower_bound.clone();
        sources.push(Box::new(
            row.meta.reader.iter_from(&lb, inner.stats.clone()),
        ));
    }
    let mut merged = KWayMerge::new(sources);
    let mut column: Vec<OwnedEntry> = Vec::new();
    let mut bytes = 0usize;
    let mut split: Option<Vec<u8>> = None;
    for e in &mut merged {
        bytes += e.key.len() + e.value.len() + 17;
        column.push(e);
        if bytes >= target_bytes {
            split = Some(column.last().unwrap().key.clone());
            break;
        }
    }
    if column.is_empty() {
        inner
            .telemetry
            .compaction_end(0, CompactionKind::LazyCopy, 0, t0.elapsed());
        return Ok(());
    }
    // Include every remaining version of the split key so no row keeps a
    // stale newer version below its lower bound.
    if let Some(split_key) = &split {
        for e in merged {
            if &e.key == split_key {
                column.push(e);
            } else {
                break;
            }
        }
    }

    let deduped: Vec<OwnedEntry> = dedup_newest(column.into_iter(), false).collect();
    inner.lsm.ingest_run_to_level(deduped.into_iter(), 1)?;

    // Truncate rows logically; drop exhausted ones and free their NVM.
    let new_bound: Vec<u8> = match &split {
        Some(k) => {
            let mut b = k.clone();
            b.push(0);
            b
        }
        // No split: the whole container was consumed.
        None => {
            let mut max = Vec::new();
            for r in &rows {
                if r.meta.largest > max {
                    max = r.meta.largest.clone();
                }
            }
            max.push(0);
            max
        }
    };
    {
        // Only the rows that contributed to this column may be truncated —
        // a row flushed after the snapshot holds newer versions that were
        // not moved.
        let participant_ids: std::collections::HashSet<u64> =
            rows.iter().map(|r| r.meta.id).collect();
        let mut rows_w = inner.rows.write();
        for row in rows_w.iter_mut() {
            if participant_ids.contains(&row.meta.id) && row.lower_bound < new_bound {
                row.lower_bound = new_bound.clone();
            }
        }
        let dead: Vec<Row> = rows_w.iter().filter(|r| r.exhausted()).cloned().collect();
        rows_w.retain(|r| !r.exhausted());
        for d in dead {
            inner.row_store.delete(d.meta.id);
        }
    }
    let took = t0.elapsed();
    Stats::add_time(&inner.stats.copy_compaction_ns, took);
    Stats::add(&inner.stats.copy_compactions, 1);
    inner
        .telemetry
        .compaction_end(0, CompactionKind::LazyCopy, bytes as u64, took);
    Ok(())
}

fn lsm_worker(inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match inner.lsm.run_one_compaction() {
            Ok(true) => continue,
            Ok(false) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => {
                *inner.bg_error.lock() = Some(format!("lsm compaction failed: {e}"));
                return;
            }
        }
    }
}

fn release_arena_when_unique(mut arc: Arc<SkipListArena>) {
    for _ in 0..10_000 {
        match Arc::try_unwrap(arc) {
            Ok(a) => {
                a.release();
                return;
            }
            Err(back) => {
                arc = back;
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

impl KvEngine for MatrixKv {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, OpKind::Put)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", OpKind::Delete)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let t0 = Instant::now();
        let r = self.get_impl(key);
        if r.is_ok() {
            self.inner
                .telemetry
                .get_latency
                .record(dur_ns(t0.elapsed()));
        }
        r
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let t0 = Instant::now();
        let r = self.scan_impl(start, limit);
        if r.is_ok() {
            self.inner
                .telemetry
                .scan_latency
                .record(dur_ns(t0.elapsed()));
        }
        r
    }

    fn wait_idle(&self) -> Result<()> {
        let inner = &*self.inner;
        loop {
            if let Some(msg) = inner.bg_error.lock().clone() {
                return Err(Error::Background(msg));
            }
            let busy = inner.mem.read().imm.is_some()
                || inner.row_store.total_bytes() >= inner.opts.container_bytes / 2
                || inner.lsm.needs_compaction().is_some();
            if !busy {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn report(&self) -> EngineReport {
        let inner = &*self.inner;
        let mut tables = vec![inner.rows.read().len()];
        tables.extend(inner.lsm.tables_per_level());
        EngineReport {
            name: inner.opts.name.clone(),
            nvm_used_bytes: inner.row_store.total_bytes() + inner.lsm.store().total_bytes(),
            nvm_peak_bytes: inner.row_store.total_bytes(),
            tables_per_level: tables,
            stats: inner.stats.snapshot(),
        }
    }

    fn name(&self) -> &str {
        &self.inner.opts.name
    }

    fn telemetry(&self) -> Option<&EngineTelemetry> {
        Some(&self.inner.telemetry)
    }
}

impl MatrixKv {
    /// The `get` layer walk; [`KvEngine::get`] wraps it with latency
    /// recording.
    fn get_impl(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let inner = &*self.inner;
        Stats::add(&inner.stats.gets, 1);
        let (active, imm) = {
            let mem = inner.mem.read();
            (mem.active.clone(), mem.imm.clone())
        };
        if let Some(r) = active.list().get(key) {
            count_hit(&inner.stats, r.kind);
            return Ok(resolve_kind(r.kind, r.value));
        }
        if let Some(imm) = imm {
            if let Some(r) = imm.list().get(key) {
                count_hit(&inner.stats, r.kind);
                return Ok(resolve_kind(r.kind, r.value));
            }
        }
        // Matrix container rows, newest first.
        let rows: Vec<Row> = inner.rows.read().clone();
        for row in &rows {
            if !row.live(key) || key < row.meta.smallest.as_slice() {
                continue;
            }
            if !row.meta.reader.may_contain(key) {
                Stats::add(&inner.stats.bloom_skips, 1);
                inner.telemetry.bloom_skip(0);
                continue;
            }
            if let Some(e) = row.meta.reader.get(key, &inner.stats)? {
                count_hit(&inner.stats, e.kind);
                return Ok(resolve_kind(e.kind, e.value));
            }
        }
        // LSM levels below.
        if let Some(e) = inner.lsm.get(key)? {
            return Ok(match e.kind {
                OpKind::Put => {
                    Stats::add(&inner.stats.get_hits, 1);
                    Some(e.value)
                }
                OpKind::Delete => None,
            });
        }
        Ok(None)
    }

    /// The `scan` source assembly; [`KvEngine::scan`] wraps it with latency
    /// recording.
    fn scan_impl(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let inner = &*self.inner;
        let (active, imm) = {
            let mem = inner.mem.read();
            (mem.active.clone(), mem.imm.clone())
        };
        let mut sources: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> = Vec::new();
        sources.push(Box::new(active.list().iter_from(start)));
        if let Some(imm) = imm {
            sources.push(Box::new(imm.list().iter_from(start)));
        }
        let rows: Vec<Row> = inner.rows.read().clone();
        for row in &rows {
            let from = if start < row.lower_bound.as_slice() {
                row.lower_bound.clone()
            } else {
                start.to_vec()
            };
            sources.push(Box::new(
                row.meta.reader.iter_from(&from, inner.stats.clone()),
            ));
        }
        sources.extend(inner.lsm.scan_sources(start));
        let merged = dedup_newest(KWayMerge::new(sources), true);
        Ok(merged
            .take(limit)
            .map(|e| ScanEntry {
                key: e.key,
                value: e.value,
            })
            .collect())
    }
}

/// Saturating nanosecond count of a duration, for histogram recording.
fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn resolve_kind(kind: OpKind, value: Vec<u8>) -> Option<Vec<u8>> {
    match kind {
        OpKind::Put => Some(value),
        OpKind::Delete => None,
    }
}

fn count_hit(stats: &Stats, kind: OpKind) {
    if kind == OpKind::Put {
        Stats::add(&stats.get_hits, 1);
    }
}

impl Drop for MatrixKv {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.flush_cv.notify_all();
        self.inner.imm_cv.notify_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> MatrixKvOptions {
        MatrixKvOptions {
            memtable_bytes: 32 * 1024,
            container_bytes: 256 * 1024,
            column_denominator: 4,
            lsm: LsmOptions {
                table_bytes: 32 * 1024,
                level1_max_bytes: 128 * 1024,
                ..LsmOptions::default()
            },
            table_device: DeviceModel::nvm_unthrottled(),
            row_device: DeviceModel::nvm_unthrottled(),
            ..MatrixKvOptions::default()
        }
    }

    #[test]
    fn put_get_delete() {
        let d = MatrixKv::open(opts(), Arc::new(Stats::new())).unwrap();
        d.put(b"k", b"v").unwrap();
        assert_eq!(d.get(b"k").unwrap().unwrap(), b"v");
        d.delete(b"k").unwrap();
        assert!(d.get(b"k").unwrap().is_none());
    }

    #[test]
    fn rows_form_and_columns_drain() {
        let d = MatrixKv::open(opts(), Arc::new(Stats::new())).unwrap();
        let value = vec![1u8; 512];
        for i in 0..3000u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        let snap = d.report().stats;
        assert!(snap.flush_count > 1, "rows must form");
        assert!(snap.copy_compactions > 0, "column compactions must run");
        assert!(
            d.report().tables_per_level[1..].iter().sum::<usize>() > 0,
            "L1+ must receive columns: {:?}",
            d.report().tables_per_level
        );
        for i in (0..3000u32).step_by(271) {
            assert_eq!(
                d.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
                value,
                "key{i}"
            );
        }
    }

    #[test]
    fn newest_version_wins_across_rows_and_lsm() {
        let d = MatrixKv::open(opts(), Arc::new(Stats::new())).unwrap();
        for round in 0..8 {
            for i in 0..300u32 {
                d.put(
                    format!("key{i:05}").as_bytes(),
                    format!("v{round}-{:0400}", i).as_bytes(),
                )
                .unwrap();
            }
        }
        d.wait_idle().unwrap();
        for i in (0..300u32).step_by(23) {
            let v = d.get(format!("key{i:05}").as_bytes()).unwrap().unwrap();
            assert!(
                v.starts_with(b"v7-"),
                "stale: {:?}",
                String::from_utf8_lossy(&v[..4])
            );
        }
    }

    #[test]
    fn scan_sees_all_layers() {
        let d = MatrixKv::open(opts(), Arc::new(Stats::new())).unwrap();
        let value = vec![2u8; 300];
        for i in 0..2000u32 {
            d.put(format!("key{i:05}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        let out = d.scan(b"key00100", 20).unwrap();
        assert_eq!(out.len(), 20);
        assert_eq!(out[0].key, b"key00100");
        for w in out.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn deletes_hold_across_column_compaction() {
        let d = MatrixKv::open(opts(), Arc::new(Stats::new())).unwrap();
        let value = vec![3u8; 400];
        for i in 0..1500u32 {
            d.put(format!("key{i:05}").as_bytes(), &value).unwrap();
        }
        for i in (0..1500u32).step_by(3) {
            d.delete(format!("key{i:05}").as_bytes()).unwrap();
        }
        d.wait_idle().unwrap();
        for i in (0..1500u32).step_by(50) {
            let got = d.get(format!("key{i:05}").as_bytes()).unwrap();
            if i % 3 == 0 {
                assert!(got.is_none(), "key{i:05} must stay deleted");
            } else {
                assert!(got.is_some(), "key{i:05} must live");
            }
        }
    }
}
