//! NoveLSM (flat architecture) and the NoveLSM-NoSST configuration.
//!
//! Flat NoveLSM (paper §2.3, Figure 1c) enlarges the MemTable with a big
//! **mutable** persistent skip list in NVM:
//!
//! - writes go to a small DRAM MemTable;
//! - when it fills, its entries are merged into the large NVM MemTable
//!   **one by one** — each insert pays a long search in the big list plus
//!   random NVM writes (the cost §4.1 analyzes: `log(n)` probes and a
//!   `memcpy` per KV);
//! - when the NVM MemTable exceeds its capacity, it is serialized into
//!   `L0` SSTables of a traditional LSM, whose slow `L0→L1` compaction
//!   blocks everything above — the interval-stall source of Figure 2.
//!
//! `NoveLSM-NoSST` disables the SSTable layer entirely: the big skip list
//! absorbs everything (used for comparison in Figure 7).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use miodb_common::{
    CompactionKind, EngineReport, EngineTelemetry, Error, KvEngine, OpKind, Result, ScanEntry,
    StallKind, Stats, TelemetryOptions,
};
use miodb_lsm::merge_iter::{dedup_newest, KWayMerge};
use miodb_lsm::{LsmCore, LsmOptions, TableStore};
use miodb_pmem::{DeviceModel, PmemPool};
use miodb_skiplist::iter::OwnedEntry;
use miodb_skiplist::{GrowableSkipList, SkipListArena};
use parking_lot::{Condvar, Mutex, RwLock};

/// NoveLSM configuration.
#[derive(Debug, Clone)]
pub struct NoveLsmOptions {
    /// DRAM MemTable capacity.
    pub memtable_bytes: usize,
    /// Capacity threshold of the big NVM MemTable before it is flushed to
    /// SSTables (paper: 4 GB, scaled).
    pub nvm_memtable_bytes: u64,
    /// Disable SSTables entirely (the NoveLSM-NoSST configuration).
    pub no_sst: bool,
    /// LSM hierarchy configuration.
    pub lsm: LsmOptions,
    /// Device holding the SSTables (NVM-class in-memory mode, SSD-class
    /// tiered mode).
    pub table_device: DeviceModel,
    /// NVM device/pool model for the big MemTable.
    pub nvm_device: DeviceModel,
    /// NVM pool capacity.
    pub nvm_pool_bytes: usize,
    /// Engine name for reports.
    pub name: String,
    /// Telemetry collectors (same knob as MioDB's `Options::telemetry`).
    pub telemetry: TelemetryOptions,
}

impl Default for NoveLsmOptions {
    fn default() -> NoveLsmOptions {
        NoveLsmOptions {
            memtable_bytes: 2 << 20,
            nvm_memtable_bytes: 8 << 20,
            no_sst: false,
            lsm: LsmOptions::default(),
            table_device: DeviceModel::nvm(),
            nvm_device: DeviceModel::nvm(),
            nvm_pool_bytes: 256 << 20,
            name: "NoveLSM".to_string(),
            telemetry: TelemetryOptions::default(),
        }
    }
}

struct MemState {
    active: Arc<SkipListArena>,
    imm: Option<Arc<SkipListArena>>,
}

struct Inner {
    opts: NoveLsmOptions,
    stats: Arc<Stats>,
    dram: Arc<PmemPool>,
    nvm: Arc<PmemPool>,
    mem: RwLock<MemState>,
    write_mutex: Mutex<()>,
    imm_cv: Condvar,
    drain_flag: Mutex<bool>,
    drain_cv: Condvar,
    /// The big mutable NVM MemTable; swapped out atomically when flushed.
    nvm_mem: RwLock<Arc<GrowableSkipList>>,
    /// A full NVM MemTable being serialized into `L0`; stays readable so
    /// its entries (and tombstones) never vanish mid-flush.
    nvm_imm: RwLock<Option<Arc<GrowableSkipList>>>,
    lsm: LsmCore,
    seq: AtomicU64,
    shutdown: AtomicBool,
    bg_error: Mutex<Option<String>>,
    telemetry: EngineTelemetry,
}

/// The flat-NoveLSM baseline engine.
pub struct NoveLsm {
    inner: Arc<Inner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for NoveLsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NoveLsm")
            .field("name", &self.inner.opts.name)
            .finish()
    }
}

impl NoveLsm {
    /// Opens a fresh engine.
    ///
    /// # Errors
    ///
    /// Returns allocation errors from the DRAM or NVM pools.
    pub fn open(opts: NoveLsmOptions, stats: Arc<Stats>) -> Result<NoveLsm> {
        let dram = PmemPool::new(
            (opts.memtable_bytes * 6).max(8 << 20),
            DeviceModel::dram(),
            stats.clone(),
        )?;
        let nvm = PmemPool::new(opts.nvm_pool_bytes, opts.nvm_device, stats.clone())?;
        let store = TableStore::new(opts.table_device, stats.clone());
        let lsm = LsmCore::new(store, opts.lsm.clone());
        let active = Arc::new(SkipListArena::new(dram.clone(), opts.memtable_bytes)?);
        let nvm_mem = Arc::new(GrowableSkipList::new_keeping_tombstones(
            nvm.clone(),
            1 << 20,
        )?);
        let telemetry = EngineTelemetry::new(lsm.tables_per_level().len(), &opts.telemetry);
        let inner = Arc::new(Inner {
            opts,
            stats,
            dram,
            nvm,
            mem: RwLock::new(MemState { active, imm: None }),
            write_mutex: Mutex::new(()),
            imm_cv: Condvar::new(),
            drain_flag: Mutex::new(false),
            drain_cv: Condvar::new(),
            nvm_mem: RwLock::new(nvm_mem),
            nvm_imm: RwLock::new(None),
            lsm,
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            bg_error: Mutex::new(None),
            telemetry,
        });
        let mut threads = Vec::new();
        {
            let inner = inner.clone();
            threads.push(std::thread::spawn(move || drain_worker(inner)));
        }
        {
            let inner = inner.clone();
            threads.push(std::thread::spawn(move || compaction_worker(inner)));
        }
        Ok(NoveLsm {
            inner,
            threads: Mutex::new(threads),
        })
    }

    fn write(&self, key: &[u8], value: &[u8], kind: OpKind) -> Result<()> {
        let inner = &*self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::Closed);
        }
        if let Some(msg) = inner.bg_error.lock().clone() {
            return Err(Error::Background(msg));
        }
        let op_start = Instant::now();
        let mut guard = inner.write_mutex.lock();
        Stats::add(
            &inner.stats.user_bytes_written,
            (key.len() + value.len()) as u64,
        );

        // L0 backpressure from the traditional LSM below.
        if !inner.opts.no_sst {
            let l0 = inner.lsm.l0_count();
            if l0 >= inner.opts.lsm.l0_slowdown_trigger {
                let pause = Duration::from_micros(1000);
                inner.telemetry.stall_begin(StallKind::Cumulative);
                std::thread::sleep(pause);
                Stats::add_time(&inner.stats.cumulative_stall_ns, pause);
                Stats::add(&inner.stats.cumulative_stall_count, 1);
                inner.telemetry.stall_end(StallKind::Cumulative, pause);
            }
        }

        // WAL to NVM (modeled append).
        inner.nvm.charge_write(17 + key.len() + value.len());

        let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
        loop {
            // Scope the Arc clone to the attempt: holding it across the
            // rotation wait would stall the flush worker's unique-release.
            let r = {
                let active = inner.mem.read().active.clone();
                active.insert(key, value, seq, kind)
            };
            match r {
                Ok(()) => {
                    let h = match kind {
                        OpKind::Put => &inner.telemetry.put_latency,
                        OpKind::Delete => &inner.telemetry.delete_latency,
                    };
                    h.record(dur_ns(op_start.elapsed()));
                    return Ok(());
                }
                Err(Error::ArenaFull) => {
                    let t0 = Instant::now();
                    let mut stalled = false;
                    while inner.mem.read().imm.is_some() {
                        if !stalled {
                            stalled = true;
                            inner.telemetry.stall_begin(StallKind::Interval);
                        }
                        inner.imm_cv.wait_for(&mut guard, Duration::from_millis(5));
                        if inner.shutdown.load(Ordering::Acquire) {
                            return Err(Error::Closed);
                        }
                    }
                    if stalled {
                        let waited = t0.elapsed();
                        Stats::add_time(&inner.stats.interval_stall_ns, waited);
                        Stats::add(&inner.stats.interval_stall_count, 1);
                        inner.telemetry.stall_end(StallKind::Interval, waited);
                    }
                    let fresh = Arc::new(SkipListArena::new(
                        inner.dram.clone(),
                        inner
                            .opts
                            .memtable_bytes
                            .max(SkipListArena::capacity_for_entry(key.len(), value.len())),
                    )?);
                    {
                        let mut mem = inner.mem.write();
                        let old = std::mem::replace(&mut mem.active, fresh);
                        mem.imm = Some(old);
                    }
                    let mut flag = inner.drain_flag.lock();
                    *flag = true;
                    inner.drain_cv.notify_all();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Merges the immutable DRAM MemTable into the big NVM MemTable entry by
/// entry, then flushes the big list into `L0` SSTables when it overflows.
fn drain_worker(inner: Arc<Inner>) {
    loop {
        {
            let mut flag = inner.drain_flag.lock();
            while !*flag && !inner.shutdown.load(Ordering::Acquire) {
                inner
                    .drain_cv
                    .wait_for(&mut flag, Duration::from_millis(10));
            }
            *flag = false;
        }
        let imm = inner.mem.read().imm.clone();
        if let Some(imm) = imm {
            inner.telemetry.flush_begin(imm.used_bytes());
            let t0 = Instant::now();
            let result: Result<()> = (|| {
                let nvm_mem = inner.nvm_mem.read().clone();
                // Per-entry insertion into the big skip list: the cost the
                // paper's Principle 2 calls out.
                for e in imm.list().iter() {
                    nvm_mem.apply(&e.key, &e.value, e.seq, e.kind)?;
                }
                Ok(())
            })();
            if let Err(e) = result {
                *inner.bg_error.lock() = Some(format!("nvm-memtable merge failed: {e}"));
            }
            let took = t0.elapsed();
            Stats::add_time(&inner.stats.flush_ns, took);
            Stats::add(&inner.stats.flush_count, 1);
            Stats::add(&inner.stats.flush_bytes, imm.used_bytes());
            inner.telemetry.flush_end(imm.used_bytes(), took);

            {
                let mut mem = inner.mem.write();
                mem.imm = None;
            }
            {
                // Notify under the writer mutex to avoid lost wakeups.
                let _writers = inner.write_mutex.lock();
                inner.imm_cv.notify_all();
            }
            release_arena_when_unique(imm);

            // Overflow: serialize the big NVM MemTable into L0 SSTables.
            if !inner.opts.no_sst {
                let needs_flush = {
                    let nvm_mem = inner.nvm_mem.read();
                    nvm_mem.data_bytes() >= inner.opts.nvm_memtable_bytes
                };
                if needs_flush {
                    if let Err(e) = flush_big_memtable(&inner) {
                        *inner.bg_error.lock() = Some(format!("nvm-memtable flush failed: {e}"));
                    }
                }
            }
        }
        if inner.shutdown.load(Ordering::Acquire) && inner.mem.read().imm.is_none() {
            return;
        }
    }
}

fn flush_big_memtable(inner: &Inner) -> Result<()> {
    let fresh = Arc::new(GrowableSkipList::new_keeping_tombstones(
        inner.nvm.clone(),
        1 << 20,
    )?);
    let full = {
        let mut nvm_mem = inner.nvm_mem.write();
        std::mem::replace(&mut *nvm_mem, fresh)
    };
    *inner.nvm_imm.write() = Some(full.clone());
    // Serialize into SSTables (the deserialization/serialization costs the
    // paper measures stem from here). The immutable list stays readable
    // until its tables are installed in L0.
    let drained_bytes = full.data_bytes();
    inner
        .telemetry
        .compaction_begin(0, CompactionKind::LazyCopy);
    let t0 = Instant::now();
    let result = inner.lsm.ingest_sorted_run(full.list().iter());
    *inner.nvm_imm.write() = None;
    inner
        .telemetry
        .compaction_end(0, CompactionKind::LazyCopy, drained_bytes, t0.elapsed());
    result?;
    release_repo_when_unique(full, inner);
    Ok(())
}

fn release_repo_when_unique(mut arc: Arc<GrowableSkipList>, inner: &Inner) {
    for _ in 0..10_000 {
        match Arc::try_unwrap(arc) {
            Ok(list) => {
                list.release();
                return;
            }
            Err(back) => {
                arc = back;
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

fn release_arena_when_unique(mut arc: Arc<SkipListArena>) {
    for _ in 0..10_000 {
        match Arc::try_unwrap(arc) {
            Ok(a) => {
                a.release();
                return;
            }
            Err(back) => {
                arc = back;
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

fn compaction_worker(inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        if inner.opts.no_sst {
            return;
        }
        match inner.lsm.run_one_compaction() {
            Ok(true) => continue,
            Ok(false) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => {
                *inner.bg_error.lock() = Some(format!("compaction failed: {e}"));
                return;
            }
        }
    }
}

impl KvEngine for NoveLsm {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(key, value, OpKind::Put)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(key, b"", OpKind::Delete)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let t0 = Instant::now();
        let r = self.get_impl(key);
        if r.is_ok() {
            self.inner
                .telemetry
                .get_latency
                .record(dur_ns(t0.elapsed()));
        }
        r
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let t0 = Instant::now();
        let r = self.scan_impl(start, limit);
        if r.is_ok() {
            self.inner
                .telemetry
                .scan_latency
                .record(dur_ns(t0.elapsed()));
        }
        r
    }

    fn wait_idle(&self) -> Result<()> {
        let inner = &*self.inner;
        loop {
            if let Some(msg) = inner.bg_error.lock().clone() {
                return Err(Error::Background(msg));
            }
            let busy = inner.mem.read().imm.is_some()
                || inner.nvm_imm.read().is_some()
                || (!inner.opts.no_sst && inner.lsm.needs_compaction().is_some());
            if !busy {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn report(&self) -> EngineReport {
        let inner = &*self.inner;
        EngineReport {
            name: inner.opts.name.clone(),
            nvm_used_bytes: inner.nvm.used_bytes() + inner.lsm.store().total_bytes(),
            nvm_peak_bytes: inner.nvm.peak_bytes(),
            tables_per_level: inner.lsm.tables_per_level(),
            stats: inner.stats.snapshot(),
        }
    }

    fn name(&self) -> &str {
        &self.inner.opts.name
    }

    fn telemetry(&self) -> Option<&EngineTelemetry> {
        Some(&self.inner.telemetry)
    }
}

impl NoveLsm {
    /// The `get` layer walk; [`KvEngine::get`] wraps it with latency
    /// recording.
    fn get_impl(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let inner = &*self.inner;
        Stats::add(&inner.stats.gets, 1);
        let (active, imm) = {
            let mem = inner.mem.read();
            (mem.active.clone(), mem.imm.clone())
        };
        if let Some(r) = active.list().get(key) {
            return Ok(resolve_counted(&inner.stats, r));
        }
        if let Some(imm) = imm {
            if let Some(r) = imm.list().get(key) {
                return Ok(resolve_counted(&inner.stats, r));
            }
        }
        let nvm_mem = inner.nvm_mem.read().clone();
        if let Some(r) = nvm_mem.get(key) {
            return Ok(resolve_counted(&inner.stats, r));
        }
        if let Some(imm) = inner.nvm_imm.read().clone() {
            if let Some(r) = imm.get(key) {
                return Ok(resolve_counted(&inner.stats, r));
            }
        }
        if !inner.opts.no_sst {
            if let Some(e) = inner.lsm.get(key)? {
                return Ok(match e.kind {
                    OpKind::Put => {
                        Stats::add(&inner.stats.get_hits, 1);
                        Some(e.value)
                    }
                    OpKind::Delete => None,
                });
            }
        }
        Ok(None)
    }

    /// The `scan` source assembly; [`KvEngine::scan`] wraps it with latency
    /// recording.
    fn scan_impl(&self, start: &[u8], limit: usize) -> Result<Vec<ScanEntry>> {
        let inner = &*self.inner;
        let (active, imm) = {
            let mem = inner.mem.read();
            (mem.active.clone(), mem.imm.clone())
        };
        let mut sources: Vec<Box<dyn Iterator<Item = OwnedEntry> + Send>> = Vec::new();
        sources.push(Box::new(active.list().iter_from(start)));
        if let Some(imm) = imm {
            sources.push(Box::new(imm.list().iter_from(start)));
        }
        let nvm_mem = inner.nvm_mem.read().clone();
        sources.push(Box::new(nvm_mem.list().iter_from(start)));
        if let Some(nvm_imm) = inner.nvm_imm.read().clone() {
            sources.push(Box::new(nvm_imm.list().iter_from(start)));
        }
        if !inner.opts.no_sst {
            sources.extend(inner.lsm.scan_sources(start));
        }
        let merged = dedup_newest(KWayMerge::new(sources), true);
        Ok(merged
            .take(limit)
            .map(|e| ScanEntry {
                key: e.key,
                value: e.value,
            })
            .collect())
    }
}

/// Saturating nanosecond count of a duration, for histogram recording.
fn dur_ns(d: Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

fn resolve(r: miodb_skiplist::LookupResult) -> Option<Vec<u8>> {
    match r.kind {
        OpKind::Put => Some(r.value),
        OpKind::Delete => None,
    }
}

fn resolve_counted(stats: &Stats, r: miodb_skiplist::LookupResult) -> Option<Vec<u8>> {
    if r.kind == OpKind::Put {
        Stats::add(&stats.get_hits, 1);
    }
    resolve(r)
}

impl Drop for NoveLsm {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.drain_cv.notify_all();
        self.inner.imm_cv.notify_all();
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> NoveLsmOptions {
        NoveLsmOptions {
            memtable_bytes: 32 * 1024,
            nvm_memtable_bytes: 128 * 1024,
            lsm: LsmOptions {
                table_bytes: 32 * 1024,
                level1_max_bytes: 128 * 1024,
                ..LsmOptions::default()
            },
            table_device: DeviceModel::nvm_unthrottled(),
            nvm_device: DeviceModel::nvm_unthrottled(),
            nvm_pool_bytes: 64 << 20,
            ..NoveLsmOptions::default()
        }
    }

    #[test]
    fn put_get_delete() {
        let d = NoveLsm::open(opts(), Arc::new(Stats::new())).unwrap();
        d.put(b"k", b"v").unwrap();
        assert_eq!(d.get(b"k").unwrap().unwrap(), b"v");
        d.delete(b"k").unwrap();
        assert!(d.get(b"k").unwrap().is_none());
    }

    #[test]
    fn data_flows_into_sstables() {
        let d = NoveLsm::open(opts(), Arc::new(Stats::new())).unwrap();
        let value = vec![1u8; 512];
        for i in 0..2000u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        let report = d.report();
        assert!(
            report.tables_per_level.iter().sum::<usize>() > 0,
            "big memtable must overflow into SSTables: {report:?}"
        );
        for i in (0..2000u32).step_by(211) {
            assert_eq!(
                d.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
                value
            );
        }
    }

    #[test]
    fn nosst_keeps_everything_in_big_list() {
        let d = NoveLsm::open(
            NoveLsmOptions {
                no_sst: true,
                name: "NoveLSM-NoSST".to_string(),
                ..opts()
            },
            Arc::new(Stats::new()),
        )
        .unwrap();
        let value = vec![2u8; 512];
        for i in 0..1500u32 {
            d.put(format!("key{i:06}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        assert_eq!(d.report().tables_per_level.iter().sum::<usize>(), 0);
        for i in (0..1500u32).step_by(97) {
            assert_eq!(
                d.get(format!("key{i:06}").as_bytes()).unwrap().unwrap(),
                value
            );
        }
    }

    #[test]
    fn scan_merges_all_layers() {
        let d = NoveLsm::open(opts(), Arc::new(Stats::new())).unwrap();
        let value = vec![3u8; 256];
        for i in 0..1000u32 {
            d.put(format!("key{i:05}").as_bytes(), &value).unwrap();
        }
        d.wait_idle().unwrap();
        d.put(b"key00001x", b"fresh").unwrap();
        let out = d.scan(b"key00001", 3).unwrap();
        assert_eq!(out[0].key, b"key00001");
        assert_eq!(out[1].key, b"key00001x");
        assert_eq!(out[2].key, b"key00002");
    }

    #[test]
    fn overwrites_resolve_to_newest() {
        let d = NoveLsm::open(opts(), Arc::new(Stats::new())).unwrap();
        let value = vec![4u8; 600];
        // Enough traffic to push old versions into the big list and L0.
        for round in 0..6 {
            for i in 0..200u32 {
                d.put(
                    format!("key{i:05}").as_bytes(),
                    format!("v{round}-{}", String::from_utf8_lossy(&value[..8])).as_bytes(),
                )
                .unwrap();
            }
        }
        d.wait_idle().unwrap();
        for i in (0..200u32).step_by(17) {
            let v = d.get(format!("key{i:05}").as_bytes()).unwrap().unwrap();
            assert!(
                v.starts_with(b"v5-"),
                "stale value {:?}",
                String::from_utf8_lossy(&v)
            );
        }
    }
}
