//! Baseline KV engines the paper compares MioDB against.
//!
//! Both are faithful reimplementations of the *storage logic* of their
//! research prototypes on the shared mini-LSM substrate (`miodb-lsm`), so
//! all engines are measured with identical device models, statistics and
//! workload drivers:
//!
//! - [`NoveLsm`]: the flat-NoveLSM architecture (paper Figure 1c) — a
//!   small DRAM MemTable staged into a **large mutable NVM MemTable**
//!   (per-entry skip-list inserts), flushed into block SSTables when the
//!   NVM MemTable fills. Also provides the **NoveLSM-NoSST**
//!   configuration (one big persistent skip list, no SSTables) used in
//!   Figure 7.
//! - [`MatrixKv`]: MatrixKV (Figure 1d) — `L0` replaced by an NVM
//!   **matrix container** of serialized rows with DRAM indexes, drained by
//!   fine-grained **column compactions** directly into `L1`.

pub mod matrixkv;
pub mod novelsm;

pub use matrixkv::{MatrixKv, MatrixKvOptions};
pub use novelsm::{NoveLsm, NoveLsmOptions};
