//! The stall phenomenology of §3.1 under a write burst with throttled
//! devices: NoveLSM exhibits both stall kinds, MatrixKV avoids prolonged
//! interval stalls via fast row flushing but pays cumulative pacing, and
//! the LSM-below backpressure shows up in both.

use std::sync::Arc;

use miodb_baselines::{MatrixKv, MatrixKvOptions, NoveLsm, NoveLsmOptions};
use miodb_common::{KvEngine, Stats};
use miodb_lsm::LsmOptions;
use miodb_pmem::DeviceModel;

fn lsm() -> LsmOptions {
    LsmOptions {
        table_bytes: 32 * 1024,
        level1_max_bytes: 64 * 1024,
        l0_compaction_trigger: 2,
        l0_slowdown_trigger: 3,
        l0_stop_trigger: 6,
        ..LsmOptions::default()
    }
}

fn burst(engine: &dyn KvEngine, n: u32) {
    let value = vec![0x77u8; 1024];
    for i in 0..n {
        engine.put(format!("key{i:06}").as_bytes(), &value).unwrap();
    }
}

#[test]
fn novelsm_stalls_under_burst_with_slow_tables() {
    let engine = NoveLsm::open(
        NoveLsmOptions {
            memtable_bytes: 32 * 1024,
            nvm_memtable_bytes: 96 * 1024,
            lsm: lsm(),
            // Strongly throttled table device: flushing cannot keep up.
            table_device: DeviceModel::ssd().scaled(2.0),
            nvm_device: DeviceModel::nvm(),
            nvm_pool_bytes: 128 << 20,
            ..NoveLsmOptions::default()
        },
        Arc::new(Stats::new()),
    )
    .unwrap();
    burst(&engine, 2_000);
    let s = engine.report().stats;
    assert!(
        s.interval_stall_ns + s.cumulative_stall_ns > 0,
        "NoveLSM must stall under burst: {s:?}"
    );
    engine.wait_idle().unwrap();
    // Data integrity is unaffected by the stalls.
    for i in (0..2_000u32).step_by(191) {
        assert!(engine
            .get(format!("key{i:06}").as_bytes())
            .unwrap()
            .is_some());
    }
}

#[test]
fn matrixkv_pays_cumulative_pacing_when_container_fills() {
    let engine = MatrixKv::open(
        MatrixKvOptions {
            memtable_bytes: 32 * 1024,
            // Tiny container with a slow L1 device: pacing must kick in.
            container_bytes: 64 * 1024,
            lsm: lsm(),
            table_device: DeviceModel::ssd().scaled(2.0),
            row_device: DeviceModel::nvm(),
            ..MatrixKvOptions::default()
        },
        Arc::new(Stats::new()),
    )
    .unwrap();
    burst(&engine, 2_000);
    let s = engine.report().stats;
    assert!(
        s.cumulative_stall_ns > 0,
        "MatrixKV paces writers when behind: {s:?}"
    );
    engine.wait_idle().unwrap();
    for i in (0..2_000u32).step_by(191) {
        assert!(engine
            .get(format!("key{i:06}").as_bytes())
            .unwrap()
            .is_some());
    }
}

#[test]
fn matrixkv_flushes_faster_than_it_compacts() {
    // The defining MatrixKV behaviour: MemTable flushes (row writes to
    // NVM) never block on the slow column compaction to SSD, so interval
    // stalls stay near zero even when cumulative pacing is active.
    let stats = Arc::new(Stats::new());
    let engine = MatrixKv::open(
        MatrixKvOptions {
            memtable_bytes: 32 * 1024,
            container_bytes: 1 << 20, // roomy container absorbs the burst
            lsm: lsm(),
            table_device: DeviceModel::ssd(),
            row_device: DeviceModel::nvm_unthrottled(),
            ..MatrixKvOptions::default()
        },
        stats,
    )
    .unwrap();
    burst(&engine, 1_500);
    let s = engine.report().stats;
    assert!(
        s.interval_stall_ns < 500_000_000,
        "row flushing should not produce long interval stalls: {s:?}"
    );
    assert!(s.flush_count > 10, "burst must rotate many memtables");
}
